"""Clause: one unit of the intent grammar (§5.1).

The grammar::

    <Intent> -> <Clause>+
    <Clause> -> <Axis> | <Filter>
    <Axis>   -> <attribute>* <channel> <aggregation> <bin_size>
    <Filter> -> <attribute> [= > < <= >= !=] <value>

``attribute`` and ``value`` admit unions (lists) and the wildcard ``?``
(optionally constrained, e.g. ``Clause("?", data_type="quantitative")``).
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["Clause", "FILTER_OPS", "WILDCARD"]

WILDCARD = "?"
FILTER_OPS = ("=", "!=", ">", "<", ">=", "<=")

_AGG_NAME_FROM_CALLABLE = {
    "mean": "mean",
    "nanmean": "mean",
    "average": "mean",
    "avg": "mean",
    "sum": "sum",
    "nansum": "sum",
    "var": "var",
    "nanvar": "var",
    "std": "std",
    "nanstd": "std",
    "min": "min",
    "max": "max",
    "median": "median",
    "count": "count",
    "size": "count",
}


def _normalize_aggregation(agg: Any) -> str | None:
    if agg is None or agg == "":
        return None
    if callable(agg):
        name = getattr(agg, "__name__", "")
        if name in _AGG_NAME_FROM_CALLABLE:
            return _AGG_NAME_FROM_CALLABLE[name]
        raise ValueError(f"unsupported aggregation callable {agg!r}")
    name = str(agg).lower()
    if name in _AGG_NAME_FROM_CALLABLE:
        return _AGG_NAME_FROM_CALLABLE[name]
    raise ValueError(f"unsupported aggregation {agg!r}")


class Clause:
    """An axis or filter of interest.

    Examples
    --------
    >>> Clause(attribute="Age")                          # axis
    >>> Clause(attribute="Age", aggregation="var")       # axis with agg
    >>> Clause(attribute="Dept", filter_op="=", value="Sales")   # filter
    >>> Clause(attribute="?", data_type="quantitative")  # wildcard axis
    >>> Clause(attribute=["A", "B"])                     # union axis
    """

    def __init__(
        self,
        attribute: str | Sequence[str] = "",
        value: Any = "",
        filter_op: str = "=",
        channel: str = "",
        aggregation: Any = "",
        bin_size: int = 0,
        data_type: str = "",
        sort: str = "",
        description: str = "",
    ) -> None:
        if isinstance(attribute, (list, tuple)):
            attribute = list(attribute)
        self.attribute = attribute
        self.value = list(value) if isinstance(value, (list, tuple)) else value
        if filter_op not in FILTER_OPS:
            raise ValueError(f"unsupported filter operation {filter_op!r}")
        self.filter_op = filter_op
        self.channel = channel
        self.aggregation = _normalize_aggregation(aggregation)
        #: Whether the user set the aggregation explicitly (overrides defaults).
        self.aggregation_specified = aggregation not in ("", None)
        self.bin_size = int(bin_size)
        self.data_type = data_type
        self.sort = sort
        self.description = description

    # ------------------------------------------------------------------
    @property
    def is_filter(self) -> bool:
        """Filters carry a value; axes do not."""
        return self.value not in ("", None) or (
            isinstance(self.value, list) and len(self.value) > 0
        )

    @property
    def is_axis(self) -> bool:
        return not self.is_filter

    @property
    def is_wildcard(self) -> bool:
        attr_wild = self.attribute == WILDCARD
        value_wild = self.value == WILDCARD
        return attr_wild or value_wild

    @property
    def is_union(self) -> bool:
        return isinstance(self.attribute, list) or isinstance(self.value, list)

    def alternatives(self, all_attributes: Sequence[str]) -> list["Clause"]:
        """Enumerate the concrete clauses this clause stands for.

        Attribute unions/wildcards expand here; *value* wildcards are
        expanded later by the compiler because they need column metadata.
        """
        if isinstance(self.attribute, list):
            return [self._with_attribute(a) for a in self.attribute]
        if self.attribute == WILDCARD:
            return [self._with_attribute(a) for a in all_attributes]
        return [self]

    def _with_attribute(self, attribute: str) -> "Clause":
        out = self.copy()
        out.attribute = attribute
        return out

    def copy(self) -> "Clause":
        out = Clause.__new__(Clause)
        out.attribute = (
            list(self.attribute) if isinstance(self.attribute, list) else self.attribute
        )
        out.value = list(self.value) if isinstance(self.value, list) else self.value
        out.filter_op = self.filter_op
        out.channel = self.channel
        out.aggregation = self.aggregation
        out.aggregation_specified = self.aggregation_specified
        out.bin_size = self.bin_size
        out.data_type = self.data_type
        out.sort = self.sort
        out.description = self.description
        return out

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        if self.is_filter:
            return f"Clause({self.attribute!s} {self.filter_op} {self.value!r})"
        extras = []
        if self.aggregation:
            extras.append(f"aggregation={self.aggregation}")
        if self.channel:
            extras.append(f"channel={self.channel}")
        if self.bin_size:
            extras.append(f"bin_size={self.bin_size}")
        if self.data_type:
            extras.append(f"data_type={self.data_type}")
        suffix = (", " + ", ".join(extras)) if extras else ""
        return f"Clause({self.attribute!r}{suffix})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Clause):
            return NotImplemented
        return (
            self.attribute == other.attribute
            and self.value == other.value
            and self.filter_op == other.filter_op
            and self.channel == other.channel
            and self.aggregation == other.aggregation
            and self.bin_size == other.bin_size
            and self.data_type == other.data_type
        )

    def __hash__(self) -> int:
        attr = tuple(self.attribute) if isinstance(self.attribute, list) else self.attribute
        value = tuple(self.value) if isinstance(self.value, list) else self.value
        return hash((attr, value, self.filter_op, self.channel, self.aggregation))
