"""Intent validator (§7.1.1): early warnings before compilation.

Checks user clauses against precomputed metadata and raises
:class:`IntentError` with *suggested corrections* (close-match column names,
known filter values) when the intent does not align with the dataframe.
"""

from __future__ import annotations

import difflib
from typing import Sequence

from .clause import WILDCARD, Clause
from .errors import IntentError
from .metadata import Metadata

__all__ = ["validate_intent"]


def _suggest(name: str, candidates: Sequence[str]) -> list[str]:
    return difflib.get_close_matches(name, candidates, n=3, cutoff=0.6)


def _check_attribute(attr: str, metadata: Metadata) -> None:
    if attr == WILDCARD or attr in metadata:
        return
    raise IntentError(
        f"attribute {attr!r} does not exist in the dataframe.",
        suggestions=_suggest(attr, [a.name for a in metadata]),
    )


def _check_filter_value(clause: Clause, metadata: Metadata) -> None:
    attr = str(clause.attribute)
    if attr == WILDCARD or attr not in metadata:
        return
    meta = metadata[attr]
    if clause.filter_op != "=" or clause.value == WILDCARD:
        return
    values = clause.value if isinstance(clause.value, list) else [clause.value]
    # Only equality filters on fully-enumerated columns can be checked.
    if meta.unique_truncated or meta.data_type == "quantitative":
        return
    known = set(map(str, meta.unique_values))
    for value in values:
        if str(value) not in known:
            raise IntentError(
                f"value {value!r} not found in column {attr!r}.",
                suggestions=_suggest(str(value), sorted(known)[:200]),
            )


def _check_data_type_constraint(clause: Clause) -> None:
    valid = ("", "quantitative", "nominal", "temporal", "geographic", "id")
    if clause.data_type not in valid:
        raise IntentError(
            f"unknown data type constraint {clause.data_type!r}.",
            suggestions=[t for t in valid if t],
        )


def validate_intent(clauses: Sequence[Clause], metadata: Metadata) -> None:
    """Raise IntentError on the first inconsistency; silent when valid."""
    for clause in clauses:
        _check_data_type_constraint(clause)
        attrs = (
            [str(a) for a in clause.attribute]
            if isinstance(clause.attribute, list)
            else [str(clause.attribute)]
        )
        for attr in attrs:
            if attr:
                _check_attribute(attr, metadata)
        if clause.is_filter:
            _check_filter_value(clause, metadata)
