"""Synthetic width-scaling dataset (§9.3 / Fig. 12 left).

Reproduces the paper's construction exactly: a 100k-row frame with 78%
quantitative columns (half integers, half floats), 20% nominal columns
whose cardinalities follow a geometric series between 1 and 10000, and 2%
temporal columns.
"""

from __future__ import annotations

import numpy as np

from ..core.frame import LuxDataFrame
from .minifaker import MiniFaker

__all__ = ["make_width_dataset"]


def _geometric_cardinalities(n: int, lo: int = 1, hi: int = 10_000) -> list[int]:
    if n <= 0:
        return []
    if n == 1:
        return [lo]
    series = np.geomspace(lo, hi, n)
    return [max(int(round(c)), 1) for c in series]


def make_width_dataset(
    n_rows: int = 100_000,
    n_cols: int = 100,
    quantitative_frac: float = 0.78,
    nominal_frac: float = 0.20,
    seed: int = 0,
) -> LuxDataFrame:
    """Generate the synthetic frame used for the width experiment.

    ``n_cols`` is partitioned into quantitative/nominal/temporal per the
    fractions; the temporal share is the remainder (paper: 2%), with at
    least one temporal column when ``n_cols >= 3``.
    """
    if n_cols < 1:
        raise ValueError("n_cols must be >= 1")
    faker = MiniFaker(seed)
    n_quant = int(round(n_cols * quantitative_frac))
    n_nominal = int(round(n_cols * nominal_frac))
    n_temporal = max(n_cols - n_quant - n_nominal, 0)
    if n_temporal == 0 and n_cols >= 3:
        n_temporal, n_quant = 1, n_quant - 1
    n_int = n_quant // 2
    n_float = n_quant - n_int

    data: dict[str, object] = {}
    for i in range(n_int):
        data[f"int_{i}"] = faker.integers(n_rows, 0, 10_000)
    for i in range(n_float):
        data[f"float_{i}"] = np.round(faker.floats(n_rows, mean=50, std=15), 3)
    for i, card in enumerate(_geometric_cardinalities(n_nominal)):
        data[f"nominal_{i}"] = faker.words(n_rows, cardinality=card)
    for i in range(n_temporal):
        data[f"date_{i}"] = faker.dates(n_rows)
    return LuxDataFrame(data)
