"""Synthetic datasets: the width-scaling frame and the load-test matrix.

:func:`make_width_dataset` reproduces the paper's §9.3 / Fig. 12 (left)
construction exactly: a 100k-row frame with 78% quantitative columns
(half integers, half floats), 20% nominal columns whose cardinalities
follow a geometric series between 1 and 10000, and 2% temporal columns.

The ``SCENARIOS`` registry adds the adversarial frame shapes the load
harness (``benchmarks/bench_load.py``) drives through the service —
each one stresses a different part of the pipeline:

``wide``
    500+ columns.  Metadata inference and enumeration scale with width;
    the quantitative share is capped (~40 columns) because Correlation
    enumerates measure *pairs* and would otherwise go quadratic.
``highcard``
    Nominal columns whose cardinality approaches the row count —
    group-bys degenerate toward one row per group and the occurrence
    interestingness collapses.
``skewed``
    Heavy-tailed measures (lognormal, ``sigma`` up to 3) and Zipf-
    distributed nominal frequencies — bin edges and group sizes are
    dominated by outliers.
``datetime``
    Temporal-dominant: most columns are dates at wildly different spans,
    exercising datetime binning/granularity selection on every pass.
``nullheavy``
    30–70% missing values per column (masked NaN / None), stressing the
    mask-aware aggregation paths.

All generators are deterministic in ``(n_rows, seed)`` — the load
harness's post-drain identity check depends on two independently built
frames being bit-identical.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.frame import LuxDataFrame
from .minifaker import MiniFaker

__all__ = [
    "SCENARIOS",
    "make_datetime_scenario",
    "make_highcard_scenario",
    "make_nullheavy_scenario",
    "make_scenario",
    "make_skewed_scenario",
    "make_wide_scenario",
    "make_width_dataset",
]


def _geometric_cardinalities(n: int, lo: int = 1, hi: int = 10_000) -> list[int]:
    if n <= 0:
        return []
    if n == 1:
        return [lo]
    series = np.geomspace(lo, hi, n)
    return [max(int(round(c)), 1) for c in series]


def make_width_dataset(
    n_rows: int = 100_000,
    n_cols: int = 100,
    quantitative_frac: float = 0.78,
    nominal_frac: float = 0.20,
    seed: int = 0,
) -> LuxDataFrame:
    """Generate the synthetic frame used for the width experiment.

    ``n_cols`` is partitioned into quantitative/nominal/temporal per the
    fractions; the temporal share is the remainder (paper: 2%), with at
    least one temporal column when ``n_cols >= 3``.
    """
    if n_cols < 1:
        raise ValueError("n_cols must be >= 1")
    faker = MiniFaker(seed)
    n_quant = int(round(n_cols * quantitative_frac))
    n_nominal = int(round(n_cols * nominal_frac))
    n_temporal = max(n_cols - n_quant - n_nominal, 0)
    if n_temporal == 0 and n_cols >= 3:
        n_temporal, n_quant = 1, n_quant - 1
    n_int = n_quant // 2
    n_float = n_quant - n_int

    data: dict[str, object] = {}
    for i in range(n_int):
        data[f"int_{i}"] = faker.integers(n_rows, 0, 10_000)
    for i in range(n_float):
        data[f"float_{i}"] = np.round(faker.floats(n_rows, mean=50, std=15), 3)
    for i, card in enumerate(_geometric_cardinalities(n_nominal)):
        data[f"nominal_{i}"] = faker.words(n_rows, cardinality=card)
    for i in range(n_temporal):
        data[f"date_{i}"] = faker.dates(n_rows)
    return LuxDataFrame(data)


# ----------------------------------------------------------------------
# Load-harness scenario matrix
# ----------------------------------------------------------------------


def make_wide_scenario(
    n_rows: int = 2_000, seed: int = 0, n_cols: int = 500
) -> LuxDataFrame:
    """500+ column frame with a capped quantitative share.

    Width stresses metadata inference and action enumeration.  Only ~8%
    of columns are quantitative: Correlation enumerates
    ``C(measures, 2)`` pairs, so an uncapped 500-wide frame would spend
    the whole pass on one action instead of exercising breadth.
    """
    faker = MiniFaker(seed)
    n_quant = max(n_cols // 12, 4)          # ~40 at the default width
    n_temporal = max(n_cols // 50, 2)
    n_nominal = n_cols - n_quant - n_temporal
    data: dict[str, object] = {}
    for i in range(n_quant // 2):
        data[f"q_int_{i}"] = faker.integers(n_rows, 0, 10_000)
    for i in range(n_quant - n_quant // 2):
        data[f"q_float_{i}"] = np.round(faker.floats(n_rows, mean=50, std=15), 3)
    for i, card in enumerate(_geometric_cardinalities(n_nominal)):
        data[f"nom_{i}"] = faker.words(n_rows, cardinality=card)
    for i in range(n_temporal):
        data[f"date_{i}"] = faker.dates(n_rows, span_days=365 * (i + 1))
    return LuxDataFrame(data)


def make_highcard_scenario(n_rows: int = 5_000, seed: int = 0) -> LuxDataFrame:
    """Nominal cardinality approaching the row count.

    Group-bys degenerate toward one row per group: the occurrence
    action's bars explode and uniqueness-based type inference sits right
    on its ID-detection boundary.
    """
    faker = MiniFaker(seed)
    return LuxDataFrame(
        {
            "near_unique": faker.words(n_rows, cardinality=max(n_rows // 2, 2)),
            "high_card": faker.words(n_rows, cardinality=max(n_rows // 10, 2)),
            "mid_card": faker.words(n_rows, cardinality=200),
            "name": faker.names(n_rows),
            "company": faker.companies(n_rows),
            "city": faker.cities(n_rows),
            "amount": np.round(faker.lognormals(n_rows, mean=3.0, sigma=1.0), 2),
            "score": np.round(faker.floats(n_rows, mean=0.0, std=1.0), 4),
            "count": faker.integers(n_rows, 0, 500),
        }
    )


def make_skewed_scenario(n_rows: int = 10_000, seed: int = 0) -> LuxDataFrame:
    """Heavy-tailed measures and Zipf-distributed nominal frequencies.

    Bin edges computed from the data range collapse almost all mass into
    the first bin; group sizes span four orders of magnitude.
    """
    faker = MiniFaker(seed)
    pool = faker._word_pool(50)
    # Zipf ranks clipped into the pool: rank 1 dominates, the tail is
    # a near-empty long tail of groups.
    ranks = np.minimum(faker.rng.zipf(1.6, size=n_rows), len(pool)) - 1
    return LuxDataFrame(
        {
            "zipf_cat": [pool[r] for r in ranks],
            "uniform_cat": faker.words(n_rows, cardinality=12),
            "heavy_tail": np.round(faker.lognormals(n_rows, mean=0.0, sigma=3.0), 4),
            "mild_tail": np.round(faker.lognormals(n_rows, mean=2.0, sigma=1.0), 4),
            "power_int": (faker.rng.pareto(1.5, size=n_rows) * 100).astype(np.int64),
            "normal_ref": np.round(faker.floats(n_rows, mean=100, std=10), 3),
            "when": faker.dates(n_rows, span_days=730),
        }
    )


def make_datetime_scenario(n_rows: int = 5_000, seed: int = 0) -> LuxDataFrame:
    """Temporal-dominant frame: dates at wildly different spans.

    Every pass exercises datetime granularity selection — from a span
    of one month (day-level bins) out to a couple of decades
    (year-level bins) — plus enough measures for line charts to rank.
    """
    faker = MiniFaker(seed)
    data: dict[str, object] = {}
    spans = [30, 90, 365, 365 * 3, 365 * 8, 365 * 20]
    for span in spans:
        data[f"ts_{span}d"] = faker.dates(
            n_rows, start="2005-01-01", span_days=span
        )
    data["event"] = faker.words(n_rows, cardinality=8)
    data["reading"] = np.round(faker.floats(n_rows, mean=20, std=5), 3)
    data["volume"] = faker.integers(n_rows, 0, 1_000)
    return LuxDataFrame(data)


def make_nullheavy_scenario(n_rows: int = 5_000, seed: int = 0) -> LuxDataFrame:
    """30–70% missing values per column (masked NaN / None).

    Aggregation, binning, and cardinality counting must all route
    through the mask-aware paths; the densities differ per column so
    joint charts see mismatched coverage.
    """
    faker = MiniFaker(seed)
    rng = faker.rng

    def _holey_floats(frac: float, mean: float, std: float) -> np.ndarray:
        values = faker.floats(n_rows, mean=mean, std=std)
        values[rng.random(n_rows) < frac] = np.nan
        return np.round(values, 3)

    def _holey_words(frac: float, cardinality: int) -> list:
        words = faker.words(n_rows, cardinality=cardinality)
        drop = rng.random(n_rows) < frac
        return [None if d else w for w, d in zip(words, drop)]

    return LuxDataFrame(
        {
            "sparse_70": _holey_floats(0.7, 10, 2),
            "sparse_50": _holey_floats(0.5, 100, 30),
            "sparse_30": _holey_floats(0.3, -5, 1),
            "cat_sparse_60": _holey_words(0.6, 10),
            "cat_sparse_40": _holey_words(0.4, 40),
            "dense_anchor": np.round(faker.floats(n_rows, mean=0, std=1), 4),
            "dense_cat": faker.words(n_rows, cardinality=6),
        }
    )


#: The load-harness scenario matrix: name -> generator(n_rows=, seed=).
SCENARIOS: "dict[str, Callable[..., LuxDataFrame]]" = {
    "wide": make_wide_scenario,
    "highcard": make_highcard_scenario,
    "skewed": make_skewed_scenario,
    "datetime": make_datetime_scenario,
    "nullheavy": make_nullheavy_scenario,
}


def make_scenario(
    name: str, n_rows: int | None = None, seed: int = 0
) -> LuxDataFrame:
    """Build one scenario frame by registry name.

    ``n_rows=None`` takes the scenario's own default size; unknown names
    raise ``KeyError`` listing the registry.
    """
    try:
        generator = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None
    if n_rows is None:
        return generator(seed=seed)
    return generator(n_rows=n_rows, seed=seed)
