"""Synthetic dataset generators standing in for the paper's data sources.

Each generator documents which paper artifact it substitutes for (see
DESIGN.md section 2 for the full substitution table).
"""

from .airbnb import make_airbnb
from .communities import make_communities
from .covid import make_covid_stringency
from .hpi import make_hpi
from .minifaker import MiniFaker
from .synthetic import make_width_dataset
from .uci import DatasetSize, make_uci_like, sample_uci_sizes

__all__ = [
    "DatasetSize",
    "MiniFaker",
    "make_airbnb",
    "make_communities",
    "make_covid_stringency",
    "make_hpi",
    "make_uci_like",
    "make_width_dataset",
    "sample_uci_sizes",
]
