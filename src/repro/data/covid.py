"""COVID-19 stringency dataset generator (§3 step II, substitution for [36]).

One row per country with the Oxford-tracker-style ``stringency`` index as of
March 11, 2020: heavily right-skewed (most countries had low early
responses), with China and Italy at the strict end, and Afghanistan,
Pakistan, and Rwanda as the paper's highlighted low-resource/high-response
outliers.
"""

from __future__ import annotations

import numpy as np

from ..core.frame import LuxDataFrame
from .hpi import COUNTRIES, _iso3

__all__ = ["make_covid_stringency"]

#: Countries the paper calls out with unusually strict early responses.
_STRICT = {"China": 81.0, "Italy": 85.2}
_PRAISED_OUTLIERS = {"Afghanistan": 62.5, "Pakistan": 58.3, "Rwanda": 65.1}


def make_covid_stringency(seed: int = 13) -> LuxDataFrame:
    """Generate the (Entity, Code, stringency) table for 2020-03-11."""
    rng = np.random.default_rng(seed)
    iso = _iso3()
    entities = list(COUNTRIES) + ["Italy"]
    seen = set()
    rows = {"Entity": [], "Code": [], "Day": [], "stringency": []}
    for country in entities:
        if country in seen:
            continue
        seen.add(country)
        if country in _STRICT:
            value = _STRICT[country]
        elif country in _PRAISED_OUTLIERS:
            value = _PRAISED_OUTLIERS[country]
        else:
            # Right-skewed: most countries cluster near low stringency.
            value = float(np.clip(rng.gamma(1.6, 9.0), 0, 100))
        rows["Entity"].append(country)
        rows["Code"].append(iso.get(country, country[:3].upper()))
        rows["Day"].append("2020-03-11")
        rows["stringency"].append(round(value, 1))
    return LuxDataFrame(rows)
