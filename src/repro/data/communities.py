"""Communities-and-Crime-like dataset generator (§9.1, substitution for [46]).

The UCI Communities dataset has 128 columns, almost all normalized
quantitative socio-economic rates plus community/state identifiers.  Width
— not row count — is what stresses Lux here (the Correlation action's
search space is quadratic in the number of measures), so the generator
reproduces the column-type mix and adds correlated column blocks so that
the Correlation ranking is non-trivial.
"""

from __future__ import annotations

import numpy as np

from ..core.frame import LuxDataFrame
from .minifaker import MiniFaker

__all__ = ["make_communities"]

_STATES = [
    "California", "Texas", "Florida", "New York", "Illinois", "Ohio",
    "Washington", "Oregon", "Georgia", "Virginia", "Michigan", "Arizona",
    "Alabama", "Colorado", "Nevada", "Utah",
]

_PREFIXES = [
    "pct", "med", "num", "rate", "per", "avg", "tot", "frac",
]
_TOPICS = [
    "Pop", "Urban", "Income", "Poverty", "Employ", "Divorce", "Kids",
    "Immig", "Housing", "Rent", "Vacant", "Dense", "Educ", "Police",
    "Crime", "Assault", "Burglary", "Larceny", "AutoTheft", "Arson",
]


def _column_names(n: int) -> list[str]:
    names = []
    i = 0
    while len(names) < n:
        prefix = _PREFIXES[i % len(_PREFIXES)]
        topic = _TOPICS[(i // len(_PREFIXES)) % len(_TOPICS)]
        suffix = i // (len(_PREFIXES) * len(_TOPICS))
        name = f"{prefix}{topic}" + (f"{suffix}" if suffix else "")
        names.append(name)
        i += 1
    return names


def make_communities(
    n_rows: int = 2_000, n_cols: int = 128, seed: int = 0
) -> LuxDataFrame:
    """Generate a Communities-like table: 2 nominal + (n_cols-2) measures."""
    faker = MiniFaker(seed)
    rng = faker.rng
    n_quant = n_cols - 2

    # Latent factors induce correlated blocks of ~8 columns each, giving the
    # Correlation action a meaningful ranking to recover; loadings alternate
    # strong/weak so the top pairs are clearly separated from the rest.
    n_factors = max(n_quant // 8, 1)
    factors = rng.normal(0, 1, size=(n_rows, n_factors))
    data: dict[str, object] = {
        "communityname": [f"community_{i % 1997:04d}" for i in range(n_rows)],
        "state": [_STATES[i] for i in rng.integers(0, len(_STATES), n_rows)],
    }
    names = _column_names(n_quant)
    for j, name in enumerate(names):
        factor = factors[:, (j // 8) % n_factors]
        loading = 0.95 if j % 8 < 3 else 0.25
        noise = rng.normal(0, np.sqrt(max(1 - loading**2, 0.05)), n_rows)
        raw = loading * factor + noise
        # Vary the marginal shape per column (real socio-economic rates mix
        # symmetric and heavily skewed distributions), so the Distribution
        # action has a genuine skewness ranking to recover.
        shape = j % 3
        if shape == 1:
            strength = 0.4 + 0.2 * (j % 5)
            raw = np.exp(strength * raw)  # right-skewed
        elif shape == 2:
            strength = 0.3 + 0.15 * (j % 4)
            raw = -np.exp(-strength * raw)  # left-skewed
        # Normalize to [0, 1] like the UCI original.
        lo, hi = raw.min(), raw.max()
        data[name] = np.round((raw - lo) / (hi - lo + 1e-12), 4)
    return LuxDataFrame(data)
