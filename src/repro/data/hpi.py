"""Happy Planet Index dataset generator (§3's example workflow, ref [3]).

Country-level sustainability/wellbeing indicators with the exact columns
the paper's walkthrough uses: ``AvrgLifeExpectancy`` and ``Inequality``
negatively correlated, ``G10`` countries clustered at low-inequality /
high-life-expectancy, and Sub-Saharan Africa at the opposite corner.
"""

from __future__ import annotations

import numpy as np

from ..core.frame import LuxDataFrame

__all__ = ["make_hpi", "COUNTRIES"]

_REGIONS = {
    "Americas": [
        "United States", "Canada", "Mexico", "Brazil", "Argentina", "Chile",
        "Colombia", "Peru",
    ],
    "Asia Pacific": [
        "China", "Japan", "India", "Indonesia", "Thailand", "Vietnam",
        "Philippines", "Malaysia", "Australia", "New Zealand", "Singapore",
        "South Korea", "Pakistan", "Afghanistan",
    ],
    "Europe": [
        "Germany", "France", "Italy", "Spain", "United Kingdom", "Ireland",
        "Netherlands", "Belgium", "Austria", "Portugal", "Greece", "Norway",
        "Sweden", "Denmark", "Finland", "Switzerland",
    ],
    "Middle East": ["Turkey", "Israel", "Saudi Arabia", "Iran", "Egypt"],
    "Post-communist": ["Russia", "Ukraine", "Poland"],
    "SubSaharan Africa": ["Nigeria", "Kenya", "South Africa", "Rwanda"],
}

_G10 = {
    "United States", "Canada", "Japan", "Germany", "France", "Italy",
    "United Kingdom", "Belgium", "Netherlands", "Sweden", "Switzerland",
}

_ISO3 = None  # generated as the first 3 letters, uppercased, deduped

COUNTRIES = [c for values in _REGIONS.values() for c in values]


def _iso3() -> dict[str, str]:
    seen: dict[str, str] = {}
    used: set[str] = set()
    for country in COUNTRIES:
        base = country.replace(" ", "").upper()[:3]
        code = base
        i = 0
        while code in used:
            i += 1
            code = base[:2] + str(i)
        used.add(code)
        seen[country] = code
    return seen


def make_hpi(seed: int = 7) -> LuxDataFrame:
    """Generate the HPI table (one row per country, 9 columns)."""
    rng = np.random.default_rng(seed)
    iso = _iso3()
    rows = {
        "Country": [],
        "iso3": [],
        "Region": [],
        "Population": [],
        "AvrgLifeExpectancy": [],
        "Inequality": [],
        "Wellbeing": [],
        "Footprint": [],
        "HappyPlanetIndex": [],
        "G10": [],
    }
    region_wealth = {
        "Americas": 0.55,
        "Asia Pacific": 0.5,
        "Europe": 0.85,
        "Middle East": 0.45,
        "Post-communist": 0.5,
        "SubSaharan Africa": 0.15,
    }
    # The paper highlights Afghanistan, Pakistan, and Rwanda as low-resource
    # countries (bottom-right of the Fig. 2 scatter) that nevertheless had
    # strict early COVID responses (Fig. 4).
    low_resource = {"Afghanistan": 0.06, "Pakistan": 0.10, "Rwanda": 0.08}
    for region, countries in _REGIONS.items():
        wealth_mu = region_wealth[region]
        for country in countries:
            wealth = float(np.clip(rng.normal(wealth_mu, 0.12), 0.02, 0.98))
            if country in _G10:
                wealth = float(np.clip(wealth + 0.15, 0.02, 0.98))
            if country in low_resource:
                wealth = low_resource[country]
            # Inequality decreases with wealth; life expectancy increases.
            # These two carry the least noise so that (AvrgLifeExpectancy,
            # Inequality) tops the Correlation ranking as in Fig. 1/§3.
            inequality = float(np.clip(0.5 - 0.4 * wealth + rng.normal(0, 0.02), 0.04, 0.55))
            life = float(np.clip(49 + 34 * wealth + rng.normal(0, 1.0), 48, 84))
            wellbeing = float(np.clip(3.0 + 4.5 * wealth + rng.normal(0, 0.9), 2.0, 8.0))
            footprint = float(np.clip(1.0 + 9.0 * wealth + rng.normal(0, 2.2), 0.5, 12.0))
            hpi = float(np.clip(wellbeing * life / 10.0 / (0.6 + footprint / 8.0)
                                + rng.normal(0, 2.0), 12, 45))
            rows["Country"].append(country)
            rows["iso3"].append(iso[country])
            rows["Region"].append(region)
            rows["Population"].append(int(rng.lognormal(16.5, 1.2)))
            rows["AvrgLifeExpectancy"].append(round(life, 1))
            rows["Inequality"].append(round(inequality, 3))
            rows["Wellbeing"].append(round(wellbeing, 2))
            rows["Footprint"].append(round(footprint, 2))
            rows["HappyPlanetIndex"].append(round(hpi, 1))
            rows["G10"].append("true" if country in _G10 else "false")
    return LuxDataFrame(rows)
