"""UCI-repository size census sampler (§1's "98% of datasets" claim).

The paper's bound — the experiment's 10M-row Airbnb and 100k-row/128-col
Communities upper limits "cover around 98% of the datasets in the UCI
repository" — implies a long-tailed joint size distribution.  This module
samples (rows, cols) pairs from a log-normal fit of the published UCI
catalogue statistics so the overhead-percentile benchmark can evaluate the
claim's shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.frame import LuxDataFrame
from .synthetic import make_width_dataset

__all__ = ["DatasetSize", "make_uci_like", "sample_uci_sizes"]

# Log-normal parameters eyeballed from the UCI catalogue: median ~1.7k rows
# / ~18 attributes, with a heavy right tail reaching millions of rows and
# hundreds of columns.
_ROWS_MU, _ROWS_SIGMA = np.log(1_700.0), 1.9
_COLS_MU, _COLS_SIGMA = np.log(18.0), 1.1


@dataclass(frozen=True)
class DatasetSize:
    rows: int
    cols: int

    @property
    def cells(self) -> int:
        return self.rows * self.cols


def sample_uci_sizes(
    n: int,
    seed: int = 0,
    max_rows: int = 10_000_000,
    max_cols: int = 500,
) -> list[DatasetSize]:
    """Sample ``n`` (rows, cols) pairs from the UCI-like size distribution."""
    rng = np.random.default_rng(seed)
    rows = np.exp(rng.normal(_ROWS_MU, _ROWS_SIGMA, n))
    cols = np.exp(rng.normal(_COLS_MU, _COLS_SIGMA, n))
    return [
        DatasetSize(
            rows=int(np.clip(r, 10, max_rows)),
            cols=int(np.clip(c, 2, max_cols)),
        )
        for r, c in zip(rows, cols)
    ]


def make_uci_like(size: DatasetSize, seed: int = 0) -> LuxDataFrame:
    """Materialize a synthetic dataset of the given size (UCI type mix)."""
    return make_width_dataset(n_rows=size.rows, n_cols=size.cols, seed=seed)
