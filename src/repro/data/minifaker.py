"""Mini-faker: deterministic synthetic value generators.

Substitutes for the ``faker`` library used in the paper's Fig. 12 (left)
width-scaling experiment.  All generators are seeded and vectorized.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MiniFaker"]

_FIRST_NAMES = [
    "Alice", "Bob", "Carol", "David", "Emma", "Frank", "Grace", "Henry",
    "Ivy", "Jack", "Karen", "Liam", "Mona", "Noah", "Olivia", "Peter",
    "Quinn", "Rosa", "Sam", "Tina", "Uma", "Victor", "Wendy", "Xander",
    "Yara", "Zane",
]
_LAST_NAMES = [
    "Smith", "Johnson", "Lee", "Brown", "Garcia", "Miller", "Davis",
    "Martinez", "Lopez", "Wilson", "Anderson", "Thomas", "Taylor", "Moore",
    "Jackson", "Martin", "Perez", "Thompson", "White", "Harris",
]
_CITIES = [
    "Springfield", "Riverton", "Lakeview", "Fairview", "Georgetown",
    "Salem", "Madison", "Arlington", "Ashland", "Dover", "Hudson",
    "Clinton", "Milton", "Auburn", "Dayton", "Lexington", "Milford",
    "Newport", "Oxford", "Princeton",
]
_WORDS = [
    "alpha", "bravo", "cedar", "delta", "ember", "falcon", "granite",
    "harbor", "indigo", "juniper", "kepler", "lumen", "meadow", "nimbus",
    "onyx", "prairie", "quartz", "raven", "sable", "tundra", "umber",
    "violet", "willow", "xenon", "yonder", "zephyr",
]
_COMPANY_SUFFIXES = ["Inc", "LLC", "Corp", "Group", "Labs", "Partners"]


class MiniFaker:
    """Seeded generator of name/city/word/date columns."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def integers(self, n: int, low: int = 0, high: int = 1000) -> np.ndarray:
        return self.rng.integers(low, high, size=n)

    def floats(self, n: int, mean: float = 0.0, std: float = 1.0) -> np.ndarray:
        return self.rng.normal(mean, std, size=n)

    def lognormals(self, n: int, mean: float = 0.0, sigma: float = 1.0) -> np.ndarray:
        return self.rng.lognormal(mean, sigma, size=n)

    # ------------------------------------------------------------------
    def words(self, n: int, cardinality: int = 20) -> list[str]:
        """Nominal strings with exactly ``cardinality`` distinct values."""
        pool = self._word_pool(cardinality)
        return [pool[i] for i in self.rng.integers(0, len(pool), size=n)]

    def _word_pool(self, cardinality: int) -> list[str]:
        pool = []
        i = 0
        while len(pool) < cardinality:
            base = _WORDS[i % len(_WORDS)]
            suffix = i // len(_WORDS)
            pool.append(base if suffix == 0 else f"{base}_{suffix}")
            i += 1
        return pool[:cardinality]

    def names(self, n: int) -> list[str]:
        first = self.rng.integers(0, len(_FIRST_NAMES), size=n)
        last = self.rng.integers(0, len(_LAST_NAMES), size=n)
        return [f"{_FIRST_NAMES[i]} {_LAST_NAMES[j]}" for i, j in zip(first, last)]

    def cities(self, n: int) -> list[str]:
        idx = self.rng.integers(0, len(_CITIES), size=n)
        return [_CITIES[i] for i in idx]

    def companies(self, n: int) -> list[str]:
        w = self.rng.integers(0, len(_WORDS), size=n)
        s = self.rng.integers(0, len(_COMPANY_SUFFIXES), size=n)
        return [
            f"{_WORDS[i].capitalize()} {_COMPANY_SUFFIXES[j]}" for i, j in zip(w, s)
        ]

    def dates(
        self, n: int, start: str = "2018-01-01", span_days: int = 1000
    ) -> np.ndarray:
        base = np.datetime64(start, "ns")
        offsets = self.rng.integers(0, span_days, size=n)
        return base + offsets.astype("timedelta64[D]").astype("timedelta64[ns]")

    def booleans(self, n: int, p: float = 0.5) -> np.ndarray:
        return self.rng.random(n) < p
