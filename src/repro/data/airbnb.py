"""Airbnb-like dataset generator (§9.1 workload, substitution for [29]).

The paper's Airbnb dataset has 12 columns mixing identifiers, geographic
attributes, coordinates, categories, and skewed quantitative measures, row-
duplicated up to 10M rows.  This generator matches the schema and the
statistical character (log-normal price, zero-inflated review counts,
5 boroughs x ~200 neighbourhoods).
"""

from __future__ import annotations

import numpy as np

from ..core.frame import LuxDataFrame
from .minifaker import MiniFaker

__all__ = ["make_airbnb"]

_BOROUGHS = ["Manhattan", "Brooklyn", "Queens", "Bronx", "Staten Island"]
_ROOM_TYPES = ["Entire home/apt", "Private room", "Shared room"]


def make_airbnb(n_rows: int = 50_000, seed: int = 0) -> LuxDataFrame:
    """Generate an Airbnb-like listing table with 12 columns."""
    faker = MiniFaker(seed)
    rng = faker.rng

    borough_idx = rng.choice(len(_BOROUGHS), size=n_rows, p=[0.44, 0.41, 0.11, 0.03, 0.01])
    neighbourhood_pool = [f"{b}-{i:03d}" for b in _BOROUGHS for i in range(40)]
    neighbourhood_idx = borough_idx * 40 + rng.integers(0, 40, size=n_rows)

    price = np.round(rng.lognormal(4.7, 0.7, n_rows), 0)
    reviews = np.where(
        rng.random(n_rows) < 0.2,
        0,
        rng.negative_binomial(1, 0.04, n_rows),
    )

    data = {
        "id": np.arange(1, n_rows + 1, dtype=np.int64),
        "name": faker.companies(n_rows),
        "host_id": rng.integers(1_000, 300_000, size=n_rows),
        "host_name": faker.names(n_rows),
        "neighbourhood_group": [_BOROUGHS[i] for i in borough_idx],
        "neighbourhood": [neighbourhood_pool[i] for i in neighbourhood_idx],
        "latitude": np.round(40.5 + rng.random(n_rows) * 0.4, 5),
        "longitude": np.round(-74.2 + rng.random(n_rows) * 0.5, 5),
        "room_type": [_ROOM_TYPES[i] for i in rng.choice(3, n_rows, p=[0.52, 0.45, 0.03])],
        "price": price,
        "minimum_nights": rng.choice(
            [1, 2, 3, 4, 5, 7, 14, 30], size=n_rows, p=[0.3, 0.25, 0.15, 0.08, 0.07, 0.06, 0.04, 0.05]
        ),
        "number_of_reviews": reviews.astype(np.int64),
    }
    return LuxDataFrame(data)
