#!/usr/bin/env bash
# CI entry point: lint gate, tier-1 tests, and the shared-scan perf gate.
#
# The benchmark invocation is deliberately part of CI: it executes the full
# 40+-candidate batch path under all three conditions (uncached, cached,
# parallel), verifies parallel results are bit-identical to serial, checks
# the cache byte budget, and gates the speedup trajectory against the
# committed baseline (benchmarks/baselines/BENCH_shared_scan.json) — so
# regressions in the hottest path fail fast even when no unit test
# exercises the exact combination.  The run's BENCH_shared_scan.json is
# left in the repo root for the workflow to upload as an artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== lint =="
if python -m ruff --version >/dev/null 2>&1; then
  python -m ruff check .
  python -m ruff format --check .
else
  # Containers without ruff (it is not a runtime dependency) skip the
  # gate locally; the GitHub Actions workflow always installs it.
  echo "ruff not installed; skipping lint gate"
fi

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== shared-scan benchmark gate =="
python benchmarks/bench_shared_scan.py --quick --out BENCH_shared_scan.json
