#!/usr/bin/env bash
# CI entry point: lint gate, tier-1 tests, and the benchmark perf gates.
#
# The benchmark invocations are deliberately part of CI: they execute the
# full 40+-candidate batch path on both executor backends, verify batched
# and parallel results are bit-identical to serial, check the cache byte
# budget, and gate the speedup trajectories against the committed
# baselines (benchmarks/baselines/BENCH_*.json) — so regressions in the
# hottest paths fail fast even when no unit test exercises the exact
# combination.  Each run's BENCH_*.json is left in the repo root for the
# workflow to upload as artifacts.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== lint =="
if ! python -m ruff --version >/dev/null 2>&1; then
  # The gate is unconditional: a missing linter must fail loudly, not
  # silently pass code that networked CI would reject.
  echo "ERROR: ruff is not installed; the lint gate cannot run." >&2
  echo "       pip install -r requirements-dev.txt" >&2
  exit 1
fi
python -m ruff check .
python -m ruff format --check .

echo "== static analysis (tools/check) =="
# Repo-specific invariant gate: lock discipline, mutation-delta
# completeness, footprint coverage, config/SQL hygiene, identity-key and
# route-auth rules.  Stdlib-only, so it can never be skipped for a
# missing dependency.  The JSON report is uploaded as a CI artifact.
python -m tools.check src --json CHECK_report.json

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== shared-scan benchmark gate =="
python benchmarks/bench_shared_scan.py --quick --out BENCH_shared_scan.json

echo "== sql-scan benchmark gate =="
python benchmarks/bench_sql_scan.py --quick --out BENCH_sql_scan.json

echo "== service benchmark gate =="
python benchmarks/bench_service.py --quick --out BENCH_service.json

echo "== incremental benchmark gate =="
python benchmarks/bench_incremental.py --quick --out BENCH_incremental.json

echo "== load benchmark gate =="
# End-to-end over real HTTP: scenario matrix latency/fairness trajectory,
# plus hard correctness gates (saturation -> 429 + Retry-After -> drain ->
# bit-identical results; store eviction under pressure).  The run also
# scrapes the server's /metrics at the end and cross-checks it against
# the client-observed latency histogram (same fixed buckets).
python benchmarks/bench_load.py --quick --out BENCH_load.json \
  --metrics-out METRICS_snapshot.txt

echo "== metrics snapshot gate =="
# The scraped exposition must be non-empty and parseable; a broken
# /metrics pipeline fails CI even if every latency gate passed.
python -m repro.service.metrics METRICS_snapshot.txt
