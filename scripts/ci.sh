#!/usr/bin/env bash
# CI entry point: tier-1 tests plus a shared-scan perf-path smoke run.
#
# The benchmark invocation is deliberately part of CI: it executes the full
# 40+-candidate batch path under both cache conditions, so regressions in
# the hottest path (executor caching, batch execution) fail fast even when
# no unit test exercises the exact combination.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== shared-scan smoke =="
python benchmarks/bench_shared_scan.py --quick
