"""Unit tests for the synthetic dataset generators (DESIGN.md substitutions)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro import LuxDataFrame
from repro.data import (
    MiniFaker,
    make_airbnb,
    make_communities,
    make_covid_stringency,
    make_hpi,
    make_uci_like,
    make_width_dataset,
    sample_uci_sizes,
)


class TestMiniFaker:
    def test_deterministic(self):
        a = MiniFaker(1).names(10)
        b = MiniFaker(1).names(10)
        assert a == b

    def test_words_cardinality_exact(self):
        words = MiniFaker(0).words(5000, cardinality=137)
        assert len(set(words)) == 137

    def test_words_cardinality_one(self):
        assert set(MiniFaker(0).words(10, cardinality=1)) == {"alpha"}

    def test_dates_within_span(self):
        dates = MiniFaker(0).dates(100, start="2020-01-01", span_days=10)
        assert dates.min() >= np.datetime64("2020-01-01")
        assert dates.max() < np.datetime64("2020-01-11")

    def test_numeric_generators(self):
        f = MiniFaker(0)
        assert len(f.integers(10)) == 10
        assert len(f.floats(10)) == 10
        assert (f.lognormals(100) > 0).all()


class TestAirbnb:
    def test_schema(self):
        df = make_airbnb(1000)
        assert df.shape == (1000, 12)
        types = df.data_types
        assert types["price"] == "quantitative"
        assert types["neighbourhood_group"] == "geographic"
        assert types["room_type"] == "nominal"
        assert types["id"] == "id"

    def test_price_right_skewed(self):
        df = make_airbnb(5000)
        assert stats.skew(np.asarray(df["price"].to_list())) > 1.0

    def test_deterministic(self):
        assert make_airbnb(100, seed=5).equals(make_airbnb(100, seed=5))

    def test_is_lux_frame(self):
        assert isinstance(make_airbnb(10), LuxDataFrame)


class TestCommunities:
    def test_width(self):
        df = make_communities(200)
        assert df.shape == (200, 128)

    def test_mostly_quantitative(self):
        df = make_communities(200)
        meta = df.metadata
        assert len(meta.measures) == 126

    def test_values_normalized(self):
        df = make_communities(100)
        col = df.column(df.columns[5])
        assert col.min() >= 0.0 and col.max() <= 1.0

    def test_correlated_blocks_exist(self):
        df = make_communities(1000)
        cols = [c for c in df.columns if c not in ("communityname", "state")]
        a = np.asarray(df[cols[0]].to_list())
        b = np.asarray(df[cols[1]].to_list())
        # Same factor block with high loadings -> strong correlation.
        assert abs(np.corrcoef(a, b)[0, 1]) > 0.5

    def test_custom_width(self):
        assert make_communities(50, n_cols=40).shape == (50, 40)


class TestHpiCovid:
    def test_hpi_negative_correlation(self):
        df = make_hpi()
        x = np.asarray(df["AvrgLifeExpectancy"].to_list())
        y = np.asarray(df["Inequality"].to_list())
        assert np.corrcoef(x, y)[0, 1] < -0.8

    def test_hpi_g10_flag(self):
        df = make_hpi()
        assert set(df["G10"].unique()) == {"true", "false"}

    def test_covid_stringency_bounds(self):
        df = make_covid_stringency()
        values = df["stringency"].to_list()
        assert all(0 <= v <= 100 for v in values)

    def test_covid_china_italy_strict(self):
        df = make_covid_stringency()
        strict = {r["Entity"]: r["stringency"] for r in df.to_records()}
        assert strict["China"] > 75 and strict["Italy"] > 75

    def test_join_compatibility(self):
        hpi = make_hpi()
        covid = make_covid_stringency()
        merged = covid.merge(
            hpi, left_on=["Entity", "Code"], right_on=["Country", "iso3"]
        )
        assert len(merged) >= 40  # nearly all countries join


class TestWidthDataset:
    def test_type_mix(self):
        df = make_width_dataset(500, 100)
        meta = df.metadata
        quant = len(meta.measures)
        nominal = len(meta.columns_of_type("nominal"))
        temporal = len(meta.columns_of_type("temporal"))
        geo = len(meta.columns_of_type("geographic"))
        # 78/20/2 split (nominal columns may classify as geographic by name;
        # none should here).
        assert quant == 78
        assert nominal + geo >= 18  # high-cardinality nominals are capped out
        assert temporal == 2

    def test_cardinality_geometric_series(self):
        df = make_width_dataset(5000, 50)
        nominal_cols = [c for c in df.columns if c.startswith("nominal_")]
        cards = [df[c].nunique() for c in nominal_cols]
        assert cards == sorted(cards)  # geometric series is increasing
        assert cards[0] <= 5

    def test_small_widths(self):
        assert make_width_dataset(100, 3).shape == (100, 3)
        assert make_width_dataset(100, 1).shape == (100, 1)

    def test_bad_width(self):
        with pytest.raises(ValueError):
            make_width_dataset(10, 0)


class TestUci:
    def test_sample_sizes_bounds(self):
        sizes = sample_uci_sizes(200, seed=1)
        assert all(10 <= s.rows <= 10_000_000 for s in sizes)
        assert all(2 <= s.cols <= 500 for s in sizes)

    def test_long_tail(self):
        sizes = sample_uci_sizes(500, seed=2)
        rows = sorted(s.rows for s in sizes)
        median = rows[len(rows) // 2]
        assert rows[-1] > 20 * median  # heavy right tail

    def test_make_uci_like(self):
        size = sample_uci_sizes(1, seed=3)[0]
        small = make_uci_like(type(size)(rows=50, cols=10))
        assert small.shape == (50, 10)
