"""The load-harness scenario matrix: shapes, stress properties, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import (
    SCENARIOS,
    make_datetime_scenario,
    make_highcard_scenario,
    make_nullheavy_scenario,
    make_scenario,
    make_skewed_scenario,
    make_wide_scenario,
)


class TestRegistry:
    def test_names(self):
        assert set(SCENARIOS) == {
            "wide", "highcard", "skewed", "datetime", "nullheavy"
        }

    def test_make_scenario_dispatches(self):
        frame = make_scenario("highcard", n_rows=50)
        assert len(frame) == 50

    def test_make_scenario_default_rows(self):
        frame = make_scenario("nullheavy")
        assert len(frame) == 5_000

    def test_unknown_name_lists_choices(self):
        with pytest.raises(KeyError, match="wide"):
            make_scenario("nope")

    def test_deterministic_in_rows_and_seed(self):
        # The load harness's post-drain identity gate depends on two
        # independently built frames being bit-identical.
        for name in SCENARIOS:
            a = make_scenario(name, n_rows=60)
            b = make_scenario(name, n_rows=60)
            assert a.columns == b.columns
            for column in a.columns:
                left, right = a[column].to_list(), b[column].to_list()
                assert len(left) == len(right)
                for x, y in zip(left, right):
                    assert x == y or (x != x and y != y)  # NaN-tolerant

    def test_seed_changes_content(self):
        a = make_highcard_scenario(n_rows=100, seed=0)
        b = make_highcard_scenario(n_rows=100, seed=1)
        assert a["amount"].to_list() != b["amount"].to_list()


class TestWide:
    def test_width_and_capped_quantitative_share(self):
        frame = make_wide_scenario(n_rows=30)
        assert len(frame.columns) >= 500
        quant = [c for c in frame.columns if c.startswith("q_")]
        # Correlation enumerates measure pairs: the quantitative share
        # must stay far below the full width or the pass goes quadratic.
        assert len(quant) <= 50
        assert sum(1 for c in frame.columns if c.startswith("date_")) >= 2


class TestHighCard:
    def test_cardinality_approaches_rows(self):
        n = 1_000
        frame = make_highcard_scenario(n_rows=n)
        near_unique = len(set(frame["near_unique"].to_list()))
        assert near_unique > n * 0.3


class TestSkewed:
    def test_heavy_tail_and_zipf(self):
        frame = make_skewed_scenario(n_rows=5_000)
        heavy = np.asarray(frame["heavy_tail"].to_list())
        # Lognormal sigma=3: the top percentile dwarfs the median.
        assert np.percentile(heavy, 99) > np.median(heavy) * 50
        counts = {}
        for value in frame["zipf_cat"].to_list():
            counts[value] = counts.get(value, 0) + 1
        top = max(counts.values())
        assert top > len(frame) * 0.3  # rank-1 group dominates


class TestDatetime:
    def test_temporal_dominant(self):
        frame = make_datetime_scenario(n_rows=100)
        temporal = [c for c in frame.columns if c.startswith("ts_")]
        assert len(temporal) >= len(frame.columns) / 2


class TestNullHeavy:
    def test_null_fractions(self):
        frame = make_nullheavy_scenario(n_rows=2_000)
        sparse = frame["sparse_70"].to_list()
        nulls = sum(1 for v in sparse if v is None or v != v)
        assert 0.6 < nulls / len(sparse) < 0.8
        cats = frame["cat_sparse_60"].to_list()
        cat_nulls = sum(1 for v in cats if v is None)
        assert 0.5 < cat_nulls / len(cats) < 0.7
        dense = frame["dense_anchor"].to_list()
        assert all(v == v for v in dense)

    def test_recommendations_survive_nulls(self):
        frame = make_nullheavy_scenario(n_rows=500)
        recs = frame.recommendations
        assert any(len(recs[name]) for name in recs.keys())
