"""Self-tests for the repo's static analyzer (``tools/check``).

Every rule gets one known-bad fixture (must fire) and one known-good
fixture (must stay silent); two regression fixtures reproduce the shapes
of real bugs from the repo's history; and the whole ``src/`` tree must
check clean — that last test is what makes the CI gate trustworthy.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"

if str(REPO) not in sys.path:
    sys.path.insert(0, str(REPO))

from tools.check import run_paths  # noqa: E402
from tools.check.rules import ALL_RULES  # noqa: E402

#: rule id -> fixture stem (rule ids are kebab-case, files snake_case).
RULE_FIXTURES = {
    "guarded-by": "guarded_by",
    "result-under-lock": "result_under_lock",
    "mutation-delta": "mutation_delta",
    "footprint": "footprint",
    "config-mutation": "config_mutation",
    "sql-hygiene": "sql_hygiene",
    "unstable-key": "unstable_key",
    "route-auth": "route_auth",
    "telemetry-hygiene": "telemetry_hygiene",
}


def check_file(path: Path, select: set[str] | None = None):
    return run_paths([str(path)], select=select, root=REPO)


class TestRuleFixtures:
    def test_every_rule_has_fixture_coverage(self):
        assert set(RULE_FIXTURES) == {rule.id for rule in ALL_RULES}

    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_bad_fixture_fires(self, rule_id):
        report = check_file(FIXTURES / f"{RULE_FIXTURES[rule_id]}_bad.py")
        assert not report.errors
        assert rule_id in {v.rule for v in report.violations}, (
            f"{rule_id} did not fire on its known-bad fixture"
        )

    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_good_fixture_is_silent(self, rule_id):
        report = check_file(
            FIXTURES / f"{RULE_FIXTURES[rule_id]}_good.py", select={rule_id}
        )
        assert not report.errors
        assert report.violations == [], (
            f"{rule_id} false-positived on its known-good fixture: "
            f"{[v.render() for v in report.violations]}"
        )

    def test_violations_carry_location_and_message(self):
        report = check_file(FIXTURES / "guarded_by_bad.py")
        violation = report.violations[0]
        assert violation.rule == "guarded-by"
        assert violation.path.endswith("guarded_by_bad.py")
        assert violation.line > 0
        assert "_entries" in violation.message
        rendered = violation.render()
        assert f":{violation.line}:" in rendered and "guarded-by" in rendered


class TestRegressions:
    def test_pr1_identity_key_bug_shape(self):
        """The PR-1 bug: bare id(frame) cache keys, no weakref validation."""
        report = check_file(FIXTURES / "regression_pr1_idkey_bad.py")
        fired = {v.rule for v in report.violations}
        assert "unstable-key" in fired

    def test_pr5_dangling_manifest_bug_shape(self):
        """The PR-5 bug: store eviction mutating entries outside the lock."""
        report = check_file(FIXTURES / "regression_pr5_manifest_bad.py")
        fired = {v.rule for v in report.violations}
        assert "guarded-by" in fired
        # Only the unlocked eviction is flagged; publish holds the lock.
        assert all(
            "_evict" in v.message or v.line >= 20 for v in report.violations
        )


class TestSuppressions:
    def test_ignore_comment_silences_trailing_and_standalone(self):
        report = check_file(FIXTURES / "suppression.py")
        assert report.violations == []
        assert report.suppressed == 2

    def test_suppression_is_rule_specific(self, tmp_path):
        source = (
            "_C = {}\n"
            "def f(x):\n"
            "    _C[id(x)] = 1  # check: ignore[sql-hygiene]\n"
        )
        path = tmp_path / "wrong_rule.py"
        path.write_text(source)
        report = check_file(path)
        assert {v.rule for v in report.violations} == {"unstable-key"}


class TestLockScopeSemantics:
    def test_closure_does_not_inherit_enclosing_lock(self, tmp_path):
        """The pool done-callback shape: a closure built under the lock
        runs later with no lock held, so its guarded access must fire."""
        source = (
            "import threading\n"
            "_PENDING = {}  # guarded-by: _LOCK\n"
            "_LOCK = threading.Lock()\n"
            "def submit(future):\n"
            "    with _LOCK:\n"
            "        future.add_done_callback(\n"
            "            lambda f: _PENDING.pop(f, None)\n"
            "        )\n"
        )
        path = tmp_path / "closure.py"
        path.write_text(source)
        report = check_file(path, select={"guarded-by"})
        assert len(report.violations) == 1
        assert "_PENDING" in report.violations[0].message


class TestSourceTreeIsClean:
    def test_src_checks_clean_in_process(self):
        report = run_paths([str(REPO / "src")], root=REPO)
        assert report.errors == []
        assert report.violations == [], "\n".join(
            v.render() for v in report.violations
        )
        assert report.files_checked > 50

    def test_cli_exit_codes_and_json_report(self, tmp_path):
        def cli(*args):
            return subprocess.run(
                [sys.executable, "-m", "tools.check", *args],
                cwd=REPO,
                capture_output=True,
                text=True,
                timeout=120,
            )

        clean = cli("src", "--json", str(tmp_path / "report.json"))
        assert clean.returncode == 0, clean.stdout + clean.stderr
        payload = json.loads((tmp_path / "report.json").read_text())
        assert payload["violations"] == [] and payload["errors"] == []
        assert payload["files_checked"] > 50

        dirty = cli(str(FIXTURES / "unstable_key_bad.py"))
        assert dirty.returncode == 1
        assert "unstable-key" in dirty.stdout

        usage = cli("src", "--select", "no-such-rule")
        assert usage.returncode == 2


class TestAnnotationPresence:
    """The guarded-by convention must actually cover the concurrent core."""

    MODULES = [
        "src/repro/core/pool.py",
        "src/repro/core/executor/cache.py",
        "src/repro/core/usage_log.py",
        "src/repro/core/optimizer/scheduler.py",
        "src/repro/dataframe/observe.py",
        "src/repro/service/store.py",
        "src/repro/service/precompute.py",
        "src/repro/service/session.py",
    ]

    @pytest.mark.parametrize("relpath", MODULES)
    def test_module_declares_guards(self, relpath):
        text = (REPO / relpath).read_text(encoding="utf-8")
        assert "# guarded-by:" in text, f"{relpath} lost its lock annotations"
