"""Fixture: every guarded access happens under the lock (or declares it)."""
import threading

_REGISTRY = {}  # guarded-by: _LOCK
_LOCK = threading.Lock()


def lookup(key):
    with _LOCK:
        return _REGISTRY.get(key)


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}  # guarded-by: _lock

    def size(self):
        with self._lock:
            return len(self._entries)

    def _evict_one(self):  # requires-lock: _lock
        self._entries.popitem()
