"""Fixture: the future is awaited only after the lock is released."""
import threading


class Runner:
    def __init__(self):
        self._lock = threading.Lock()
        self._pending = []  # guarded-by: _lock

    def flush(self):
        with self._lock:
            drained = list(self._pending)
            self._pending.clear()
        return [future.result() for future in drained]
