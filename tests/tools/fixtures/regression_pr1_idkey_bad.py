"""Regression fixture: the PR-1 metadata-cache keying bug.

The computation cache originally keyed per-frame state on a bare
``id(frame)`` with no weakref validation: once a frame was collected and
CPython recycled its id for a new frame, the new frame silently inherited
the dead frame's cached metadata.  The ``unstable-key`` rule exists to
catch this exact shape.
"""

_METADATA = {}


def metadata_for(frame):
    key = id(frame)
    if key not in _METADATA:
        _METADATA[key] = {"columns": list(frame.columns)}
    return _METADATA[key]
