"""Fixture: SQL stays constant; values travel as bound parameters."""


def count_rows(conn, threshold):
    query = "SELECT COUNT(*) FROM data WHERE value > ?"
    return conn.execute(query, (threshold,)).fetchone()[0]


def describe(conn):
    # Constant concatenation (no runtime value) is fine.
    query = "SELECT name FROM sqlite_master " + "ORDER BY name"
    return [row[0] for row in conn.execute(query)]
