"""Fixture: blocking span exit, rich gauge lambda, unmeasured route."""

import threading

_LOCK = threading.Lock()
_STATS = {}


class Span:
    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        with _LOCK:  # BAD: lock acquisition on the span hot path
            _STATS["spans"] = _STATS.get("spans", 0) + 1
        print("span closed")  # BAD: blocking I/O in __exit__


def register(registry, store):
    registry.set_function(
        lambda: sum(v for v in store.stats().values())  # BAD: .stats() call
    )


class Handler:
    def _resolve(self, method):
        if method == "GET":
            return self._status, ()
        return self._mutate, ()

    @measured("status")  # noqa: F821 - name-based fixture
    @public  # noqa: F821 - name-based fixture
    def _status(self):
        return 200, {}

    @authenticated  # noqa: F821 - name-based fixture
    def _mutate(self):  # BAD: routed but not @measured — invisible route
        return 200, {}
