"""Fixture: a routed handler with no authentication posture."""


class Handler:
    def _resolve(self, method):
        if method == "GET":
            return self._status, ()
        return self._mutate, ()

    @public  # noqa: F821 - name-based fixture
    def _status(self):
        return 200, {}

    def _mutate(self):  # BAD: routed, but neither @authenticated nor @public
        return 200, {}
