"""Fixture: frame mutator writes internal state but never notifies."""


class SilentFrame(DataFrame):  # noqa: F821 - name-based fixture
    def drop_column(self, name):
        order = [c for c in self._column_order if c != name]
        self._column_order = order  # BAD: silent write, no delta emitted
        del self._data[name]
