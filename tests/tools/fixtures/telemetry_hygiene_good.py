"""Fixture: lock-free span exit, pure gauge lambda, measured routes."""

_RING = []


class Span:
    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        # A bare list/deque append is GIL-atomic: no lock, no I/O.
        _RING.append({"name": "x"})


def _slot_total(store):
    # Named reader: non-trivial bodies are allowed here, not in lambdas.
    def read():
        return float(sum(v for v in store.stats().values()))

    return read


def register(registry, store):
    registry.set_function(lambda: len(_RING))
    registry.set_function(_slot_total(store))


class Handler:
    def _resolve(self, method):
        if method == "GET":
            return self._status, ()
        return self._mutate, ()

    @measured("status")  # noqa: F821 - name-based fixture
    @public  # noqa: F821 - name-based fixture
    def _status(self):
        return 200, {}

    @measured("mutate")  # noqa: F821 - name-based fixture
    @authenticated  # noqa: F821 - name-based fixture
    def _mutate(self):
        return 200, {}
