"""Fixture: values interpolated straight into SQL text."""


def count_rows(conn, table, threshold):
    query = f"SELECT COUNT(*) FROM {table} WHERE value > {threshold}"  # BAD
    also_bad = "SELECT * FROM data WHERE name = '%s'" % table  # BAD
    concatenated = "DELETE FROM " + table  # BAD
    formatted = "DROP TABLE {}".format(table)  # BAD
    return conn.execute(query), also_bad, concatenated, formatted
