"""Fixture: every state write notifies observers with a column delta."""


class NotifyingFrame(DataFrame):  # noqa: F821 - name-based fixture
    def drop_column(self, name):
        self._column_order = [c for c in self._column_order if c != name]
        del self._data[name]
        self._notify_mutation(
            "drop_column",
            Delta.data([name], schema_changed=True),  # noqa: F821
        )

    def read_only(self, name):
        return self._data[name]
