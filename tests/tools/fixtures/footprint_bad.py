"""Fixture: concrete Action with no footprint and no explicit marker."""


class MysteryAction(Action):  # noqa: F821 - name-based fixture
    name = "Mystery"

    def applies_to(self, ldf):
        return True

    def generate(self, ldf):
        # BAD: the incremental engine cannot tell which columns this
        # reads, and nothing says so explicitly.
        return []


class HalfDeclaredAction(Action):  # noqa: F821 - name-based fixture
    name = "HalfDeclared"

    def footprint(self, ldf, metadata):
        # BAD: no candidates= keyword — silently pins the action to
        # whole-action granularity instead of deciding it explicitly.
        return Footprint(metadata.measures, intent=False)  # noqa: F821

    def generate(self, ldf):
        return []
