"""Fixture: id() used for logging only, never as a mapping key."""

_CACHE = {}


def remember(name, value):
    _CACHE[name] = value


def describe(frame):
    return f"frame object at {id(frame):#x}"
