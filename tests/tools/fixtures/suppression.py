"""Fixture: a real violation silenced by an inline suppression comment."""

_CACHE = {}


def remember_trailing(frame, value):
    _CACHE[id(frame)] = value  # check: ignore[unstable-key]


def remember_standalone(frame, value):
    # Entries are weakref-validated on read, so a recycled id never
    # aliases (mirrors the justification style used in src/).
    # check: ignore[unstable-key]
    _CACHE[id(frame)] = value
