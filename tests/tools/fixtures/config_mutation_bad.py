"""Fixture: global config mutated in place outside core/config.py."""
from repro.core.config import config


def run_fast():
    config.streaming = False  # BAD: leaks to every other thread forever
    setattr(config, "top_k", 3)  # BAD: same mutation, dynamic spelling
