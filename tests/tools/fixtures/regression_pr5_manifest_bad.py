"""Regression fixture: the PR-5 dangling-manifest bug.

The versioned result store's LRU eviction originally dropped entries
outside the store lock, racing a concurrent publish: the manifest kept
naming an action whose entry was already evicted, so reads returned a
partial pass as if it were complete.  The ``guarded-by`` rule flags the
unlocked access that made the race possible.
"""
import threading


class ResultStore:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}  # guarded-by: _lock
        self._manifests = {}  # guarded-by: _lock

    def publish(self, session, version, entries):
        with self._lock:
            self._entries.update(entries)
            self._manifests[(session, version)] = sorted(entries)

    def _evict_lru(self):
        # BAD: unlocked eviction races publish; a manifest can end up
        # naming an entry this just deleted.
        while len(self._entries) > 128:
            self._entries.popitem()
