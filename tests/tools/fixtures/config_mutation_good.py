"""Fixture: config read freely; changes go through a scoped overlay."""
from repro.core.config import config


def run_fast(frame):
    if config.streaming:
        with config.overrides(top_k=3):
            return frame.recommendations
    return None
