"""Fixture: actions either declare a footprint or mark it unknown."""


class ScopedAction(Action):  # noqa: F821 - name-based fixture
    name = "Scoped"

    def footprint(self, ldf):
        return {"intent"}

    def generate(self, ldf):
        return []


class OpaqueAction(Action):  # noqa: F821 - name-based fixture
    name = "Opaque"

    #: Inputs are opaque by design; rerun on every change.
    footprint_unknown = True

    def generate(self, ldf):
        return []


class AbstractishAction(Action):  # noqa: F821 - name-based fixture
    @abstractmethod  # noqa: F821
    def generate(self, ldf):
        ...


class DerivedAction(ScopedAction):
    # Inherits ScopedAction.footprint — no marker needed.
    name = "Derived"


class CandidateScopedAction(Action):  # noqa: F821 - name-based fixture
    name = "CandidateScoped"

    def footprint(self, ldf, metadata):
        return Footprint(  # noqa: F821
            metadata.measures,
            intent=False,
            candidates=self.candidate_footprints(ldf, metadata),
        )

    def generate(self, ldf):
        return []


class WholeActionAction(Action):  # noqa: F821 - name-based fixture
    name = "WholeAction"

    def footprint(self, ldf, metadata):
        # Overrides generate(): partial reruns cannot be stitched, so the
        # explicit candidates=None decision is the correct declaration.
        return Footprint(None, intent=False, candidates=None)  # noqa: F821

    def generate(self, ldf):
        return []
