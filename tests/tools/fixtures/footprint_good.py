"""Fixture: actions either declare a footprint or mark it unknown."""


class ScopedAction(Action):  # noqa: F821 - name-based fixture
    name = "Scoped"

    def footprint(self, ldf):
        return {"intent"}

    def generate(self, ldf):
        return []


class OpaqueAction(Action):  # noqa: F821 - name-based fixture
    name = "Opaque"

    #: Inputs are opaque by design; rerun on every change.
    footprint_unknown = True

    def generate(self, ldf):
        return []


class AbstractishAction(Action):  # noqa: F821 - name-based fixture
    @abstractmethod  # noqa: F821
    def generate(self, ldf):
        ...


class DerivedAction(ScopedAction):
    # Inherits ScopedAction.footprint — no marker needed.
    name = "Derived"
