"""Fixture: raw id() used as a cache key (recycled-id aliasing)."""

_CACHE = {}


def remember(frame, value):
    _CACHE[id(frame)] = value  # BAD: id can be recycled after collection


def recall(frame):
    key = id(frame)  # BAD: tainted name used as a key below
    return _CACHE.get(key)
