"""Fixture: every routed handler declares its authentication posture."""


class Handler:
    def _resolve(self, method):
        if method == "GET":
            return self._status, ()
        return self._mutate, ()

    @public  # noqa: F821 - name-based fixture
    def _status(self):
        return 200, {}

    @authenticated  # noqa: F821 - name-based fixture
    def _mutate(self):
        return 200, {}
