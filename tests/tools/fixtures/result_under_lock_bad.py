"""Fixture: blocking on a future while holding a lock (deadlock shape)."""
import threading


class Runner:
    def __init__(self):
        self._lock = threading.Lock()

    def flush(self, future):
        with self._lock:
            # BAD: the worker that must complete this future may itself
            # need _lock — classic lock-ordering deadlock.
            return future.result()
