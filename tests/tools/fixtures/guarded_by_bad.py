"""Fixture: guarded-by field read outside ``with self._lock``."""
import threading


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}  # guarded-by: _lock

    def size(self):
        return len(self._entries)  # BAD: unlocked read of a guarded field
