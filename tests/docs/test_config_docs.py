"""docs/configuration.md cannot drift from core/config.py.

The knob table is the operator-facing registry of every ``config.*``
field.  This test parses it back out of the markdown and holds it equal
to the dataclass — names AND defaults — so adding, removing, or
re-defaulting a knob without updating the docs fails CI.
"""

from __future__ import annotations

import ast
import os
import re
from pathlib import Path

from repro.core.config import Config

DOC = Path(__file__).resolve().parents[2] / "docs" / "configuration.md"

#: Table row: | `knob` | `default` | effect | gated by |
ROW = re.compile(r"^\|\s*`(\w+)`\s*\|\s*(`[^`]*`|[^|]+?)\s*\|")

#: Fields whose default is computed at construction time; the docs name
#: the rule in prose instead of a literal.
DYNAMIC = {"action_pool_workers": "host cores"}


def parse_table() -> dict[str, str]:
    knobs: dict[str, str] = {}
    for line in DOC.read_text().splitlines():
        match = ROW.match(line.strip())
        if not match:
            continue
        name, default = match.group(1), match.group(2).strip()
        if name == "knob":  # header row
            continue
        assert name not in knobs, f"{name} documented twice"
        knobs[name] = default
    return knobs


class TestConfigDocs:
    def test_doc_exists(self):
        assert DOC.is_file(), "docs/configuration.md is missing"

    def test_knob_set_matches_dataclass(self):
        documented = set(parse_table())
        actual = set(Config().__dict__)
        missing = actual - documented
        stale = documented - actual
        assert not missing, f"knobs missing from docs/configuration.md: {sorted(missing)}"
        assert not stale, f"docs/configuration.md documents unknown knobs: {sorted(stale)}"

    def test_defaults_match(self):
        defaults = Config().__dict__
        for name, documented in parse_table().items():
            if name in DYNAMIC:
                assert documented == DYNAMIC[name], (
                    f"{name}: expected the prose default {DYNAMIC[name]!r}, "
                    f"docs say {documented!r}"
                )
                assert defaults[name] == max(2, os.cpu_count() or 1)
                continue
            assert documented.startswith("`") and documented.endswith("`"), (
                f"{name}: default must be a backticked literal, got {documented!r}"
            )
            value = ast.literal_eval(documented.strip("`"))
            assert value == defaults[name], (
                f"{name}: docs say {value!r}, Config() has {defaults[name]!r}"
            )
