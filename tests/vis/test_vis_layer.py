"""Unit tests for the visualization layer: encodings, marks, specs, renderers."""

from __future__ import annotations

import json

import pytest

from repro.vis import (
    Encoding,
    VisSpec,
    infer_mark,
    render_widget,
    to_altair_code,
    to_matplotlib_code,
    to_vegalite,
)


class TestEncoding:
    def test_basic(self):
        e = Encoding("x", "Age", "quantitative")
        assert e.title == "Age"

    def test_aggregate_title(self):
        e = Encoding("x", "Age", "quantitative", aggregate="mean")
        assert e.title == "Mean of Age"

    def test_count_title(self):
        e = Encoding("y", "", "quantitative", aggregate="count")
        assert e.title == "Record Count"

    def test_bin_title(self):
        e = Encoding("x", "Age", "quantitative", bin=True)
        assert "binned" in e.title

    def test_bad_channel(self):
        with pytest.raises(ValueError):
            Encoding("z-axis", "Age", "quantitative")

    def test_bad_field_type(self):
        with pytest.raises(ValueError):
            Encoding("x", "Age", "numeric")

    def test_with_channel(self):
        e = Encoding("x", "Age", "quantitative").with_channel("y")
        assert e.channel == "y"

    def test_vegalite_dict(self):
        e = Encoding("x", "Age", "quantitative", bin=True, bin_size=20)
        d = e.to_vegalite()
        assert d["field"] == "Age"
        assert d["bin"] == {"maxbins": 20}

    def test_vegalite_geographic_maps_to_nominal(self):
        d = Encoding("x", "Country", "geographic").to_vegalite()
        assert d["type"] == "nominal"

    def test_vegalite_bare_count(self):
        d = Encoding("y", "", "quantitative", aggregate="count").to_vegalite()
        assert d["aggregate"] == "count"
        assert "field" not in d

    def test_frozen(self):
        e = Encoding("x", "Age", "quantitative")
        with pytest.raises(AttributeError):
            e.field = "Other"


class TestInferMark:
    @pytest.mark.parametrize(
        "x,y,binned,expected",
        [
            ("quantitative", None, True, "histogram"),
            ("nominal", None, False, "bar"),
            ("temporal", None, False, "line"),
            ("geographic", None, False, "geoshape"),
            ("quantitative", "quantitative", False, "point"),
            ("nominal", "quantitative", False, "bar"),
            ("temporal", "quantitative", False, "line"),
            ("nominal", "nominal", False, "rect"),
            ("quantitative", "quantitative", True, "rect"),
        ],
    )
    def test_rules(self, x, y, binned, expected):
        assert infer_mark(x, y, binned) == expected


class TestVisSpec:
    def _scatter(self) -> VisSpec:
        return VisSpec(
            "point",
            [
                Encoding("x", "A", "quantitative"),
                Encoding("y", "B", "quantitative"),
            ],
        )

    def test_channel_access(self):
        s = self._scatter()
        assert s.x.field == "A"
        assert s.y.field == "B"
        assert s.color is None

    def test_default_title(self):
        assert self._scatter().title == "A vs B"

    def test_title_with_filter(self):
        s = VisSpec(
            "histogram",
            [Encoding("x", "Age", "quantitative", bin=True)],
            filters=[("Dept", "=", "Sales")],
        )
        assert "Dept = Sales" in s.title

    def test_unknown_mark(self):
        with pytest.raises(ValueError):
            VisSpec("pie", [])

    def test_signature_deduplicates(self):
        assert self._scatter().signature() == self._scatter().signature()

    def test_signature_differs_on_filters(self):
        a = self._scatter()
        b = VisSpec("point", a.encodings, filters=[("C", ">", 1)])
        assert a.signature() != b.signature()

    def test_fields(self):
        assert self._scatter().fields() == ["A", "B"]

    def test_repr_state(self):
        s = self._scatter()
        assert "unprocessed" in repr(s)
        s.data = []
        assert "processed" in repr(s)


class TestVegaLite:
    def test_schema_and_encoding(self):
        s = VisSpec(
            "bar",
            [
                Encoding("y", "Dept", "nominal"),
                Encoding("x", "Age", "quantitative", aggregate="mean"),
            ],
        )
        d = to_vegalite(s)
        assert d["$schema"].endswith("v5.json")
        assert d["mark"] == "bar"
        assert d["encoding"]["x"]["aggregate"] == "mean"

    def test_inline_data_json_safe(self):
        import numpy as np

        s = VisSpec("point", [Encoding("x", "A", "quantitative")])
        s.data = [{"A": np.float64(1.5)}, {"A": np.float64("nan")}]
        d = to_vegalite(s)
        assert d["data"]["values"][0]["A"] == 1.5
        assert d["data"]["values"][1]["A"] is None
        json.dumps(d)  # must be serializable

    def test_unprocessed_uses_named_data(self):
        d = to_vegalite(VisSpec("point", [Encoding("x", "A", "quantitative")]))
        assert d["data"] == {"name": "table"}

    def test_filters_become_transforms(self):
        s = VisSpec(
            "point",
            [Encoding("x", "A", "quantitative")],
            filters=[("Dept", "=", "Sales"), ("Age", ">", 30)],
        )
        d = to_vegalite(s)
        assert d["transform"][0]["filter"] == "datum['Dept'] == 'Sales'"
        assert d["transform"][1]["filter"] == "datum['Age'] > 30"


class TestAsciiRenderer:
    def test_unprocessed_placeholder(self):
        s = VisSpec("point", [Encoding("x", "A", "quantitative")])
        assert "unprocessed" in s.to_ascii()

    def test_empty_data(self):
        s = VisSpec("point", [Encoding("x", "A", "quantitative")])
        s.data = []
        assert "no data" in s.to_ascii()

    def test_bar_renders_bars(self):
        s = VisSpec(
            "bar",
            [
                Encoding("y", "Dept", "nominal"),
                Encoding("x", "Age", "quantitative", aggregate="mean"),
            ],
        )
        s.data = [{"Dept": "a", "Age": 10.0}, {"Dept": "b", "Age": 20.0}]
        out = s.to_ascii()
        assert "█" in out
        assert "a" in out and "b" in out

    def test_histogram_renders(self):
        s = VisSpec(
            "histogram",
            [
                Encoding("x", "Age", "quantitative", bin=True),
                Encoding("y", "", "quantitative", aggregate="count"),
            ],
        )
        s.data = [{"Age": 10.0, "count": 5}, {"Age": 20.0, "count": 2}]
        assert "█" in s.to_ascii()

    def test_scatter_renders_grid(self):
        s = VisSpec(
            "point",
            [
                Encoding("x", "A", "quantitative"),
                Encoding("y", "B", "quantitative"),
            ],
        )
        s.data = [{"A": float(i), "B": float(i)} for i in range(10)]
        out = s.to_ascii()
        assert "•" in out
        assert "x: [" in out

    def test_heatmap_renders_shades(self):
        s = VisSpec(
            "rect",
            [
                Encoding("x", "A", "nominal"),
                Encoding("y", "B", "nominal"),
                Encoding("color", "", "quantitative", aggregate="count"),
            ],
        )
        s.data = [
            {"A": "p", "B": "q", "count": 9},
            {"A": "r", "B": "q", "count": 1},
        ]
        out = s.to_ascii()
        assert "█" in out

    def test_line_renders(self):
        s = VisSpec(
            "line",
            [
                Encoding("x", "t", "temporal"),
                Encoding("y", "v", "quantitative", aggregate="mean"),
            ],
        )
        s.data = [{"t": "2020-01", "v": 1.0}, {"t": "2020-02", "v": 3.0}]
        assert "*" in s.to_ascii()


class TestCodeExport:
    def _bar(self) -> VisSpec:
        return VisSpec(
            "bar",
            [
                Encoding("y", "Education", "nominal"),
                Encoding("x", "Age", "quantitative", aggregate="mean"),
            ],
        )

    def test_altair_code_compiles(self):
        code = to_altair_code(self._bar())
        compile(code, "<altair>", "exec")
        assert "mark_bar()" in code
        assert "mean(Age):Q" in code

    def test_matplotlib_code_compiles(self):
        code = to_matplotlib_code(self._bar())
        compile(code, "<mpl>", "exec")
        assert "plt.barh" in code
        assert "groupby('Education')" in code

    def test_matplotlib_histogram(self):
        s = VisSpec(
            "histogram",
            [
                Encoding("x", "Age", "quantitative", bin=True),
                Encoding("y", "", "quantitative", aggregate="count"),
            ],
        )
        code = to_matplotlib_code(s)
        assert "plt.hist" in code

    def test_matplotlib_scatter_with_color(self):
        s = VisSpec(
            "point",
            [
                Encoding("x", "A", "quantitative"),
                Encoding("y", "B", "quantitative"),
                Encoding("color", "G", "nominal"),
            ],
        )
        code = to_matplotlib_code(s)
        assert "plt.scatter" in code and "cmap" in code

    def test_filters_exported(self):
        s = VisSpec(
            "histogram",
            [Encoding("x", "Age", "quantitative", bin=True)],
            filters=[("Dept", "=", "Sales")],
        )
        assert "df['Dept'] == 'Sales'" in to_matplotlib_code(s)
        assert "df['Dept'] == 'Sales'" in to_altair_code(s)


class TestHtmlWidget:
    def test_widget_structure(self):
        s = VisSpec("point", [Encoding("x", "A", "quantitative")])
        s.data = [{"A": 1.0}]
        html = render_widget(
            {"Correlation": [s]},
            table_records=[{"A": 1.0}],
            table_columns=["A"],
        )
        assert "Toggle Pandas/Lux" in html
        assert "Correlation" in html
        assert "vega-lite" in html
        assert "vis-Correlation-0" in html

    def test_widget_escapes_html(self):
        s = VisSpec("point", [Encoding("x", "A", "quantitative")])
        s.data = []
        html = render_widget(
            {"T": [s]},
            table_records=[{"A": "<script>alert(1)</script>"}],
            table_columns=["A"],
        )
        assert "<script>alert(1)</script>" not in html
