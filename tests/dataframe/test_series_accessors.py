"""Unit tests for Series plus the .str and .dt accessors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataframe import Series, date_range, to_datetime


class TestSeriesBasics:
    def test_construction(self):
        s = Series([1, 2, 3], name="x")
        assert s.name == "x"
        assert s.shape == (3,)

    def test_arithmetic(self):
        s = Series([1.0, 2.0])
        assert (s + 1).to_list() == [2.0, 3.0]
        assert (s * 2).to_list() == [2.0, 4.0]
        assert (1 + s).to_list() == [2.0, 3.0]
        assert (3 - s).to_list() == [2.0, 1.0]

    def test_comparison_filters(self):
        s = Series([1, 5, 3])
        out = s[s > 2]
        assert out.to_list() == [5, 3]

    def test_map(self):
        s = Series([1, 2, None])
        assert s.map(lambda v: v * 10).to_list() == [10, 20, None]

    def test_value_counts(self):
        s = Series(["a", "b", "a"])
        vc = s.value_counts()
        assert vc.to_list() == [2, 1]
        assert vc.index.to_list() == ["a", "b"]

    def test_sort_values(self):
        assert Series([3, 1, 2]).sort_values().to_list() == [1, 2, 3]

    def test_head_tail(self):
        s = Series(list(range(10)))
        assert s.head(3).to_list() == [0, 1, 2]
        assert s.tail(2).to_list() == [8, 9]

    def test_isna_dropna_fillna(self):
        s = Series([1.0, None])
        assert s.isna().to_list() == [False, True]
        assert s.dropna().to_list() == [1.0]
        assert s.fillna(9.0).to_list() == [1.0, 9.0]

    def test_any_all(self):
        assert Series([True, False]).any()
        assert not Series([True, False]).all()
        with pytest.raises(TypeError):
            Series([1, 2]).any()

    def test_describe_numeric(self):
        d = Series([1.0, 2.0, 3.0]).describe()
        assert d["count"] == 3
        assert d["mean"] == 2.0

    def test_describe_categorical(self):
        d = Series(["a", "a", "b"]).describe()
        assert d["unique"] == 2
        assert d["top"] == "a"

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Series([1]))

    def test_to_frame(self):
        f = Series([1, 2], name="v").to_frame()
        assert f.columns == ["v"]

    def test_equals(self):
        assert Series([1, 2]).equals(Series([1, 2]))
        assert not Series([1, 2]).equals(Series([2, 1]))

    def test_astype(self):
        assert Series([1, 2]).astype("string").to_list() == ["1", "2"]

    def test_label_indexing(self):
        from repro.dataframe import Index

        s = Series([10, 20], index=Index(["a", "b"]))
        assert s["b"] == 20


class TestStringAccessor:
    @pytest.fixture
    def s(self) -> Series:
        return Series(["Hello", "World", None])

    def test_lower_upper(self, s):
        assert s.str.lower().to_list() == ["hello", "world", None]
        assert s.str.upper().to_list() == ["HELLO", "WORLD", None]

    def test_len(self, s):
        assert s.str.len().to_list() == [5, 5, None]

    def test_contains(self, s):
        assert s.str.contains("orl").to_list() == [False, True, None]

    def test_contains_regex(self, s):
        assert s.str.contains("^H", regex=True).to_list() == [True, False, None]

    def test_contains_case_insensitive(self, s):
        assert s.str.contains("hello", case=False).to_list() == [True, False, None]

    def test_startswith_endswith(self, s):
        assert s.str.startswith("He").to_list() == [True, False, None]
        assert s.str.endswith("ld").to_list() == [False, True, None]

    def test_replace(self, s):
        assert s.str.replace("l", "L").to_list()[0] == "HeLLo"

    def test_replace_regex(self, s):
        assert s.str.replace("[lo]+", "_", regex=True).to_list()[0] == "He_"

    def test_strip_slice(self):
        s = Series(["  x  "])
        assert s.str.strip().to_list() == ["x"]
        assert s.str.slice(0, 3).to_list() == ["  x"]

    def test_get(self):
        s = Series(["a-b", "c"])
        assert s.str.get("-", 1).to_list() == ["b", None]

    def test_zfill(self):
        assert Series(["7"]).str.zfill(3).to_list() == ["007"]

    def test_accessor_requires_string(self):
        with pytest.raises(AttributeError):
            Series([1, 2]).str


class TestDatetimeAccessor:
    @pytest.fixture
    def dates(self) -> Series:
        return to_datetime(Series(["2020-03-15", "2021-12-01", None]))

    def test_parse(self, dates):
        assert dates.dtype.name == "datetime"
        assert dates.isna().to_list() == [False, False, True]

    def test_year_month_day(self, dates):
        assert dates.dt.year.to_list() == [2020, 2021, None]
        assert dates.dt.month.to_list() == [3, 12, None]
        assert dates.dt.day.to_list() == [15, 1, None]

    def test_weekday(self):
        # 2020-03-15 was a Sunday (weekday 6 with Monday=0).
        s = to_datetime(Series(["2020-03-15"]))
        assert s.dt.weekday.to_list() == [6]

    def test_hour(self):
        s = to_datetime(Series(["2020-01-01T13:45:00"]))
        assert s.dt.hour.to_list() == [13]

    def test_us_format(self):
        s = to_datetime(Series(["3/15/2020"]))
        assert s.dt.month.to_list() == [3]

    def test_bare_year(self):
        s = to_datetime(Series(["1999"]))
        assert s.dt.year.to_list() == [1999]

    def test_strftime(self):
        s = to_datetime(Series(["2020-03-15"]))
        assert s.dt.strftime("%Y/%m").to_list() == ["2020/03"]

    def test_accessor_requires_datetime(self):
        with pytest.raises(AttributeError):
            Series([1]).dt

    def test_unparseable_becomes_missing(self):
        s = to_datetime(Series(["not a date"]))
        assert s.isna().to_list() == [True]


class TestDateRange:
    def test_daily(self):
        s = date_range("2020-01-01", periods=3)
        assert s.dt.day.to_list() == [1, 2, 3]

    def test_weekly(self):
        s = date_range("2020-01-01", periods=2, freq="W")
        assert s.dt.day.to_list() == [1, 8]

    def test_hourly(self):
        s = date_range("2020-01-01", periods=25, freq="H")
        assert s.dt.hour.to_list()[-1] == 0

    def test_bad_freq(self):
        with pytest.raises(ValueError):
            date_range("2020-01-01", periods=1, freq="Y")
