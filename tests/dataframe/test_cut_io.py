"""Unit tests for cut/qcut and CSV I/O."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.dataframe import DataFrame, Series, cut, qcut, read_csv, read_csv_string, to_csv


class TestCut:
    def test_fixed_bins_count(self):
        out = cut(Series([0.0, 2.5, 5.0, 7.5, 10.0]), 2)
        assert out.nunique() == 2

    def test_labels(self):
        out = cut(Series([1.0, 9.0]), 2, labels=["lo", "hi"])
        assert out.to_list() == ["lo", "hi"]

    def test_explicit_edges(self):
        out = cut(Series([1.0, 5.0, 9.0]), [0, 3, 10], labels=["a", "b"])
        assert out.to_list() == ["a", "b", "b"]

    def test_out_of_range_is_missing(self):
        out = cut(Series([5.0, 100.0]), [0, 10], labels=["in"])
        assert out.to_list() == ["in", None]

    def test_missing_propagates(self):
        out = cut(Series([1.0, None]), 2)
        assert out.to_list()[1] is None

    def test_include_lowest(self):
        out = cut(Series([0.0, 10.0]), [0, 5, 10], labels=["a", "b"])
        assert out.to_list() == ["a", "b"]

    def test_label_count_mismatch(self):
        with pytest.raises(ValueError):
            cut(Series([1.0]), 2, labels=["only-one"])

    def test_non_monotone_edges_raise(self):
        with pytest.raises(ValueError):
            cut(Series([1.0]), [0, 5, 3])

    def test_interval_labels_format(self):
        out = cut(Series([1.0, 9.0]), 2)
        assert "(" in out.to_list()[1] and "]" in out.to_list()[1]

    def test_constant_column(self):
        out = cut(Series([5.0, 5.0]), 2)
        assert out.null_count() if hasattr(out, "null_count") else out.to_list()
        assert all(v is not None for v in out.to_list())


class TestQcut:
    def test_balanced_halves(self):
        out = qcut(Series(list(range(100))), 2, labels=["Low", "High"])
        counts = out.value_counts().to_list()
        assert counts == [50, 50]

    def test_paper_stringency_binning(self):
        # §3 step III: qcut(stringency, 2, labels=["Low","High"]).
        rng = np.random.default_rng(0)
        s = Series(np.round(rng.gamma(1.6, 9.0, 200), 1))
        out = qcut(s, 2, labels=["Low", "High"])
        assert set(out.unique()) == {"Low", "High"}

    def test_quantile_list(self):
        out = qcut(Series(list(range(10))), [0, 0.5, 1.0], labels=["a", "b"])
        assert out.to_list()[0] == "a"
        assert out.to_list()[-1] == "b"

    def test_all_identical_raises(self):
        with pytest.raises(ValueError):
            qcut(Series([1.0, 1.0, 1.0]), 2)

    def test_missing_propagates(self):
        out = qcut(Series([1.0, 2.0, 3.0, None]), 2)
        assert out.to_list()[3] is None

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            qcut(Series([], dtype="float64"), 2)


class TestReadCsv:
    def test_type_inference(self):
        df = read_csv_string("a,b,c\n1,1.5,x\n2,2.5,y")
        assert df.column("a").dtype.name == "int64"
        assert df.column("b").dtype.name == "float64"
        assert df.column("c").dtype.name == "string"

    def test_missing_markers(self):
        df = read_csv_string("a,b\n1,x\nNA,\nnan,z")
        assert df["a"].to_list() == [1.0, None, None]
        assert df["b"].to_list() == ["x", None, "z"]

    def test_int_with_missing_becomes_float(self):
        df = read_csv_string("a\n1\nNA\n3")
        assert df.column("a").dtype.name == "float64"

    def test_blank_lines_skipped(self):
        df = read_csv_string("a\n1\n\n3")
        assert df["a"].to_list() == [1, 3]

    def test_date_parsing(self):
        df = read_csv_string("d\n2020-01-01\n2020-02-02")
        assert df.column("d").dtype.name == "datetime"

    def test_date_parsing_disabled(self):
        df = read_csv_string("d\n2020-01-01\n2020-02-02", parse_dates=False)
        assert df.column("d").dtype.name == "string"

    def test_mixed_dates_stay_string(self):
        df = read_csv_string("d\n2020-01-01\nnot-a-date")
        assert df.column("d").dtype.name == "string"

    def test_duplicate_headers_deduped(self):
        df = read_csv_string("a,a\n1,2")
        assert df.columns == ["a", "a.1"]

    def test_short_rows_padded(self):
        df = read_csv_string("a,b\n1")
        assert df["b"].to_list() == [None]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            read_csv_string("")

    def test_file_roundtrip(self, tmp_path):
        df = DataFrame({"x": [1, 2], "y": ["a", None]})
        path = str(tmp_path / "t.csv")
        to_csv(df, path)
        back = read_csv(path)
        assert back["x"].to_list() == [1, 2]
        assert back["y"].to_list() == ["a", None]

    def test_to_csv_buffer(self):
        buf = io.StringIO()
        to_csv(DataFrame({"x": [1]}), buf)
        assert buf.getvalue().strip().splitlines() == ["x", "1"]

    def test_frame_cls_override(self):
        from repro import LuxDataFrame

        df = read_csv_string("a\n1")
        assert not isinstance(df, LuxDataFrame)
        df2 = read_csv(io.StringIO("a\n1"), frame_cls=LuxDataFrame)
        assert isinstance(df2, LuxDataFrame)
