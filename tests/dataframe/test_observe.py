"""Mutation observers: registration, emission, weakref lifecycle."""

from __future__ import annotations

import gc

import pytest

from repro import LuxDataFrame
from repro.dataframe import DataFrame, observe


class TestObserve:
    def test_plain_frame_emits_on_mutation(self):
        frame = DataFrame({"a": [1, 2, 3]})
        events = []
        observe.register(frame, lambda f, op: events.append(op))
        frame["b"] = [4, 5, 6]
        del frame["b"]
        assert events == ["setitem", "delitem"]

    def test_unsubscribe_stops_events(self):
        frame = DataFrame({"a": [1, 2, 3]})
        events = []
        unsubscribe = observe.register(frame, lambda f, op: events.append(op))
        frame["b"] = [4, 5, 6]
        unsubscribe()
        frame["c"] = [7, 8, 9]
        assert events == ["setitem"]
        assert observe.observer_count(frame) == 0

    def test_lux_frame_emits_mutation_and_intent(self):
        frame = LuxDataFrame({"a": [1.0, 2.0, 3.0], "b": ["x", "y", "z"]})
        events = []
        observe.register(frame, lambda f, op: events.append(op))
        frame["c"] = frame["a"]
        frame.intent = ["a"]
        frame.clear_intent()
        assert events == ["mutation", "intent", "intent"]

    def test_intent_epoch_tracks_recommendation_state(self):
        frame = LuxDataFrame({"a": [1.0, 2.0, 3.0]})
        v0 = (frame._data_version, frame._intent_epoch)
        frame.intent = ["a"]
        v1 = (frame._data_version, frame._intent_epoch)
        assert v1 != v0 and v1[0] == v0[0]  # intent bumps epoch, not data
        frame["b"] = frame["a"]
        v2 = (frame._data_version, frame._intent_epoch)
        assert v2[0] == v1[0] + 1

    def test_broken_observer_contained(self):
        frame = DataFrame({"a": [1, 2, 3]})

        def broken(f, op):
            raise RuntimeError("observer bug")

        observe.register(frame, broken)
        with pytest.warns(RuntimeWarning, match="observer failed"):
            frame["b"] = [4, 5, 6]  # must not raise

    def test_dead_frame_drops_entry(self):
        frame = DataFrame({"a": [1, 2, 3]})
        observe.register(frame, lambda f, op: None)
        assert observe.observer_count(frame) == 1
        del frame
        gc.collect()
        # No lingering keys: the registry is keyed by id + weakref and the
        # callback fired on collection.
        assert all(ref() is not None for ref, _ in observe._OBSERVERS.values())
