"""Mutation observers: registration, delta payloads, weakref lifecycle.

Every mutating op must emit a :class:`~repro.dataframe.observe.Delta`
naming exactly the columns it touched; intent-only changes must never
mark data dirty.  The incremental precompute engine and the delta-aware
computation cache both trust these payloads, so the assertions here pin
the exact ``columns_changed`` set per op.
"""

from __future__ import annotations

import gc

import pytest

from repro import LuxDataFrame
from repro.dataframe import DataFrame, observe
from repro.dataframe.observe import Delta


def record_events(frame):
    events: list[tuple[str, Delta]] = []
    observe.register(frame, lambda f, op, delta: events.append((op, delta)))
    return events


class TestObserve:
    def test_plain_frame_emits_on_mutation(self):
        frame = DataFrame({"a": [1, 2, 3]})
        events = record_events(frame)
        frame["b"] = [4, 5, 6]
        del frame["b"]
        assert [op for op, _ in events] == ["setitem", "delitem"]

    def test_unsubscribe_stops_events(self):
        frame = DataFrame({"a": [1, 2, 3]})
        events = []
        unsubscribe = observe.register(
            frame, lambda f, op, delta: events.append(op)
        )
        frame["b"] = [4, 5, 6]
        unsubscribe()
        frame["c"] = [7, 8, 9]
        assert events == ["setitem"]
        assert observe.observer_count(frame) == 0

    def test_lux_frame_emits_mutation_and_intent(self):
        frame = LuxDataFrame({"a": [1.0, 2.0, 3.0], "b": ["x", "y", "z"]})
        events = record_events(frame)
        frame["c"] = frame["a"]
        frame.intent = ["a"]
        frame.clear_intent()
        assert [op for op, _ in events] == ["setitem", "intent", "intent"]

    def test_intent_epoch_tracks_recommendation_state(self):
        frame = LuxDataFrame({"a": [1.0, 2.0, 3.0]})
        v0 = (frame._data_version, frame._intent_epoch)
        frame.intent = ["a"]
        v1 = (frame._data_version, frame._intent_epoch)
        assert v1 != v0 and v1[0] == v0[0]  # intent bumps epoch, not data
        frame["b"] = frame["a"]
        v2 = (frame._data_version, frame._intent_epoch)
        assert v2[0] == v1[0] + 1

    def test_broken_observer_contained(self):
        frame = DataFrame({"a": [1, 2, 3]})

        def broken(f, op, delta):
            raise RuntimeError("observer bug")

        observe.register(frame, broken)
        with pytest.warns(RuntimeWarning, match="observer failed"):
            frame["b"] = [4, 5, 6]  # must not raise

    def test_dead_frame_drops_entry(self):
        frame = DataFrame({"a": [1, 2, 3]})
        observe.register(frame, lambda f, op, delta: None)
        assert observe.observer_count(frame) == 1
        del frame
        gc.collect()
        # No lingering keys: the registry is keyed by id + weakref and the
        # callback fired on collection.
        assert all(ref() is not None for ref, _ in observe._OBSERVERS.values())


class TestDeltaPayloads:
    """Exact ``columns_changed`` per mutating op, on both frame classes."""

    @pytest.fixture(params=[DataFrame, LuxDataFrame])
    def frame(self, request):
        return request.param(
            {
                "a": [1.0, 2.0, None],
                "b": [4.0, None, 6.0],
                "c": ["x", "y", "z"],
            }
        )

    def test_setitem_update_existing_column(self, frame):
        events = record_events(frame)
        frame["a"] = [9.0, 8.0, 7.0]
        (op, delta), = events
        assert op == "setitem"
        assert delta.columns_changed == {"a"}
        assert not delta.schema_changed and not delta.rows_changed
        assert not delta.intent_changed

    def test_setitem_new_column_is_schema_change(self, frame):
        events = record_events(frame)
        frame["d"] = [0.0, 0.0, 0.0]
        (_, delta), = events
        assert delta.columns_changed == {"d"}
        assert delta.schema_changed and not delta.rows_changed

    def test_setattr_assignment_routes_through_setitem(self, frame):
        events = record_events(frame)
        frame.a = [5.0, 5.0, 5.0]
        (op, delta), = events
        assert op == "setitem" and delta.columns_changed == {"a"}

    def test_append_column_to_empty_frame_changes_rows(self):
        frame = DataFrame({})
        events = record_events(frame)
        frame["a"] = [1, 2, 3]
        (_, delta), = events
        assert delta.columns_changed == {"a"}
        assert delta.rows_changed  # the index was (re)built

    def test_delitem(self, frame):
        events = record_events(frame)
        del frame["b"]
        (op, delta), = events
        assert op == "delitem"
        assert delta.columns_changed == {"b"} and delta.schema_changed

    def test_drop_inplace(self, frame):
        events = record_events(frame)
        frame.drop(["a", "c"], inplace=True)
        (op, delta), = events
        assert op == "drop"
        assert delta.columns_changed == {"a", "c"} and delta.schema_changed

    def test_rename_inplace_names_both_old_and_new(self, frame):
        events = record_events(frame)
        frame.rename({"a": "alpha"}, inplace=True)
        (op, delta), = events
        assert op == "rename"
        assert delta.columns_changed == {"a", "alpha"}
        assert delta.schema_changed and not delta.rows_changed

    def test_dropna_inplace_is_row_level(self, frame):
        events = record_events(frame)
        frame.dropna(inplace=True)
        (op, delta), = events
        assert op == "dropna"
        assert delta.rows_changed
        assert delta.columns_changed == {"a", "b", "c"}
        assert delta.full  # row changes invalidate column-level reasoning

    def test_fillna_inplace_names_only_filled_columns(self, frame):
        events = record_events(frame)
        frame.fillna(0.0, inplace=True)
        (op, delta), = events
        assert op == "fillna"
        # Only the columns that actually held nulls (and accepted the
        # fill value) changed: the string column rejects the float fill.
        assert delta.columns_changed == {"a", "b"}
        assert not delta.rows_changed

    def test_intent_only_never_marks_data_dirty(self):
        frame = LuxDataFrame({"a": [1.0, 2.0, 3.0], "c": ["x", "y", "z"]})
        v0 = frame._data_version
        events = record_events(frame)
        frame.intent = ["a"]
        frame.clear_intent()
        assert [op for op, _ in events] == ["intent", "intent"]
        for _, delta in events:
            assert delta.intent_only and delta.intent_changed
            assert delta.columns_changed == frozenset()
            assert not delta.rows_changed and not delta.schema_changed
        assert frame._data_version == v0  # data never went dirty

    def test_set_data_type_names_overridden_columns(self):
        frame = LuxDataFrame({"a": [1.0, 2.0, 3.0], "c": ["x", "y", "z"]})
        v0 = frame._data_version
        events = record_events(frame)
        frame.set_data_type({"a": "nominal"})
        (op, delta), = events
        assert op == "intent"
        assert delta.columns_changed == {"a"}
        assert delta.schema_changed and delta.intent_changed
        assert not delta.rows_changed and not delta.intent_only
        assert frame._data_version == v0


class TestDelta:
    def test_union_coalesces(self):
        a = Delta.data(["x"])
        b = Delta.data(["y"], schema_changed=True)
        u = a.union(b)
        assert u.columns_changed == {"x", "y"} and u.schema_changed

    def test_union_with_unknown_stays_unknown(self):
        assert Delta.data(["x"]).union(Delta.unknown()).columns_changed is None

    def test_touches(self):
        d = Delta.data(["x"])
        assert d.touches({"x", "y"}) and not d.touches({"y"})
        assert d.touches(None)  # unknown consumer inputs
        assert not Delta.intent().touches({"x"})
        assert Delta.unknown().touches({"anything"})

    def test_default_emit_delta_is_unknown(self):
        frame = DataFrame({"a": [1]})
        seen = []
        observe.register(frame, lambda f, op, delta: seen.append(delta))
        observe.emit(frame, "custom")
        assert seen[0].columns_changed is None and seen[0].full
