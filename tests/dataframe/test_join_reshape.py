"""Unit tests for merge, pivot, crosstab, and melt."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataframe import DataFrame, Series, crosstab, melt, merge, pivot_table


@pytest.fixture
def left() -> DataFrame:
    return DataFrame({"k": ["a", "b", "c", "a"], "v": [1, 2, 3, 4]})


@pytest.fixture
def right() -> DataFrame:
    return DataFrame({"k": ["a", "b", "d"], "w": [10.0, 20.0, 40.0]})


class TestMerge:
    def test_inner(self, left, right):
        out = merge(left, right, on="k")
        assert len(out) == 3
        assert set(zip(out["k"].to_list(), out["w"].to_list())) == {
            ("a", 10.0), ("b", 20.0), ("a", 10.0),
        }

    def test_left(self, left, right):
        out = merge(left, right, how="left", on="k")
        assert len(out) == 4
        missing = [w for k, w in zip(out["k"], out["w"]) if k == "c"]
        assert missing == [None]

    def test_right(self, left, right):
        out = merge(left, right, how="right", on="k")
        assert len(out) == 4
        d_row = [r for r in out.to_records() if r["k"] == "d"]
        assert d_row[0]["v"] is None

    def test_outer(self, left, right):
        out = merge(left, right, how="outer", on="k")
        assert len(out) == 5
        assert set(out["k"].to_list()) == {"a", "b", "c", "d"}

    def test_common_columns_default(self, left, right):
        assert merge(left, right).equals(merge(left, right, on="k"))

    def test_left_on_right_on(self):
        a = DataFrame({"x": ["p", "q"], "v": [1, 2]})
        b = DataFrame({"y": ["q", "p"], "w": [3, 4]})
        out = merge(a, b, left_on="x", right_on="y")
        assert len(out) == 2
        assert "y" in out.columns  # both key columns kept when names differ

    def test_suffixes(self):
        a = DataFrame({"k": ["a"], "v": [1]})
        b = DataFrame({"k": ["a"], "v": [2]})
        out = merge(a, b, on="k")
        assert set(out.columns) == {"k", "v_x", "v_y"}

    def test_missing_keys_do_not_match(self):
        a = DataFrame({"k": ["a", None], "v": [1, 2]})
        b = DataFrame({"k": ["a", None], "w": [3, 4]})
        assert len(merge(a, b, on="k")) == 1

    def test_multi_key(self):
        a = DataFrame({"k1": ["a", "a"], "k2": [1, 2], "v": [5, 6]})
        b = DataFrame({"k1": ["a", "a"], "k2": [2, 3], "w": [7, 8]})
        out = merge(a, b, on=["k1", "k2"])
        assert len(out) == 1
        assert out["v"].to_list() == [6]

    def test_bad_how_raises(self, left, right):
        with pytest.raises(ValueError):
            merge(left, right, how="cross")

    def test_missing_key_column_raises(self, left, right):
        with pytest.raises(KeyError):
            merge(left, right, on="zz")

    def test_matches_nested_loop(self):
        rng = np.random.default_rng(5)
        a = DataFrame({"k": rng.integers(0, 10, 60), "v": np.arange(60)})
        b = DataFrame({"k": rng.integers(0, 10, 40), "w": np.arange(40)})
        out = merge(a, b, on="k")
        expected = sorted(
            (ka, va, wb)
            for ka, va in zip(a["k"].to_list(), a["v"].to_list())
            for kb, wb in zip(b["k"].to_list(), b["w"].to_list())
            if ka == kb
        )
        got = sorted(zip(out["k"].to_list(), out["v"].to_list(), out["w"].to_list()))
        assert got == expected


class TestPivot:
    def test_pivot_basic(self):
        t = DataFrame(
            {"r": ["x", "x", "y", "y"], "c": ["m", "t", "m", "t"], "v": [1, 2, 3, 4]}
        )
        out = t.pivot(index="r", columns="c", values="v")
        assert out.index.to_list() == ["x", "y"]
        assert out["m"].to_list() == [1.0, 3.0]
        assert out["t"].to_list() == [2.0, 4.0]

    def test_pivot_duplicate_raises(self):
        t = DataFrame({"r": ["x", "x"], "c": ["m", "m"], "v": [1, 2]})
        with pytest.raises(ValueError):
            t.pivot(index="r", columns="c", values="v")

    def test_pivot_table_mean(self):
        t = DataFrame({"r": ["x", "x"], "c": ["m", "m"], "v": [1.0, 3.0]})
        out = pivot_table(t, index="r", columns="c", values="v", aggfunc="mean")
        assert out["m"].to_list() == [2.0]

    def test_pivot_table_missing_combination_is_nan(self):
        t = DataFrame({"r": ["x", "y"], "c": ["m", "t"], "v": [1, 2]})
        out = t.pivot_table(index="r", columns="c", values="v")
        assert out["t"].to_list()[0] is None

    def test_pivot_index_labelled(self):
        t = DataFrame({"r": ["x"], "c": ["m"], "v": [1]})
        out = t.pivot(index="r", columns="c", values="v")
        assert out.index.name == "r"


class TestCrosstab:
    def test_counts(self):
        out = crosstab(Series(["a", "a", "b"]), Series(["x", "y", "x"]))
        assert out["x"].to_list() == [1, 1]
        assert out["y"].to_list() == [1, 0]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            crosstab(Series(["a"]), Series(["x", "y"]))

    def test_missing_excluded(self):
        out = crosstab(Series(["a", None]), Series(["x", "x"]))
        assert sum(out["x"].to_list()) == 1


class TestMelt:
    def test_melt_shape(self):
        t = DataFrame({"id": [1, 2], "a": [3, 4], "b": [5, 6]})
        out = melt(t, id_vars=["id"])
        assert out.shape == (4, 3)
        assert out.columns == ["id", "variable", "value"]

    def test_melt_values(self):
        t = DataFrame({"id": [1, 2], "a": [3, 4]})
        out = melt(t, id_vars=["id"], value_vars=["a"])
        assert out["value"].to_list() == [3, 4]

    def test_melt_var_names(self):
        t = DataFrame({"a": [1], "b": [2]})
        out = melt(t, var_name="key", value_name="val")
        assert out.columns == ["key", "val"]
        assert out["key"].to_list() == ["a", "b"]
