"""Unit tests for the DataFrame core."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataframe import DataFrame, Index, RangeIndex, Series, concat


@pytest.fixture
def df() -> DataFrame:
    return DataFrame(
        {
            "city": ["a", "b", "a", "c", None],
            "pop": [1.0, 2.0, 3.0, None, 5.0],
            "n": [1, 2, 3, 4, 5],
        }
    )


class TestConstruction:
    def test_from_dict(self, df):
        assert df.shape == (5, 3)
        assert df.columns == ["city", "pop", "n"]

    def test_from_records(self):
        out = DataFrame([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert out.shape == (2, 2)
        assert out["a"].to_list() == [1, 2]

    def test_from_dataframe_copies(self, df):
        other = DataFrame(df)
        other["n"] = [9, 9, 9, 9, 9]
        assert df["n"].to_list() == [1, 2, 3, 4, 5]

    def test_column_order_override(self):
        out = DataFrame({"a": [1], "b": [2]}, columns=["b", "a"])
        assert out.columns == ["b", "a"]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            DataFrame({"a": [1, 2], "b": [1]})

    def test_empty(self):
        out = DataFrame({})
        assert out.empty
        assert len(out) == 0

    def test_unknown_source_raises(self):
        with pytest.raises(TypeError):
            DataFrame(42)


class TestSelection:
    def test_getitem_series(self, df):
        s = df["pop"]
        assert isinstance(s, Series)
        assert s.name == "pop"

    def test_getitem_missing_raises(self, df):
        with pytest.raises(KeyError):
            df["nope"]

    def test_getitem_list(self, df):
        sub = df[["n", "city"]]
        assert sub.columns == ["n", "city"]

    def test_dot_access(self, df):
        assert df.pop_ if False else df.n.to_list() == [1, 2, 3, 4, 5]

    def test_boolean_filter(self, df):
        out = df[df["n"] >= 3]
        assert len(out) == 3

    def test_boolean_filter_masks_missing(self, df):
        out = df[df["pop"] > 0]  # row with missing pop excluded
        assert len(out) == 4

    def test_slice(self, df):
        assert len(df[1:3]) == 2

    def test_iloc_int(self, df):
        row = df.iloc[0]
        assert row == {"city": "a", "pop": 1.0, "n": 1}

    def test_iloc_negative(self, df):
        assert df.iloc[-1]["n"] == 5

    def test_iloc_slice(self, df):
        assert len(df.iloc[0:2]) == 2

    def test_iloc_bool_array(self, df):
        assert len(df.iloc[np.array([True, False, True, False, False])]) == 2

    def test_loc_label(self, df):
        indexed = df.set_index("city")
        assert indexed.loc["b"]["n"] == 2

    def test_head_tail(self, df):
        assert len(df.head(2)) == 2
        assert df.tail(2)["n"].to_list() == [4, 5]

    def test_contains(self, df):
        assert "city" in df and "nope" not in df


class TestMutation:
    def test_setitem_list(self, df):
        df["x"] = [0, 0, 0, 0, 0]
        assert df.columns[-1] == "x"

    def test_setitem_scalar_broadcast(self, df):
        df["flag"] = 1
        assert df["flag"].to_list() == [1] * 5

    def test_setitem_series(self, df):
        df["double"] = df["n"] * 2
        assert df["double"].to_list() == [2, 4, 6, 8, 10]

    def test_setitem_length_mismatch(self, df):
        with pytest.raises(ValueError):
            df["bad"] = [1, 2]

    def test_delitem(self, df):
        del df["city"]
        assert "city" not in df.columns

    def test_rename(self, df):
        out = df.rename(columns={"pop": "population"})
        assert "population" in out.columns
        assert "pop" in df.columns

    def test_rename_inplace(self, df):
        assert df.rename(columns={"pop": "population"}, inplace=True) is None
        assert "population" in df.columns

    def test_drop(self, df):
        out = df.drop("city")
        assert out.columns == ["pop", "n"]

    def test_drop_missing_raises(self, df):
        with pytest.raises(KeyError):
            df.drop("nope")

    def test_dropna(self, df):
        assert len(df.dropna()) == 3

    def test_dropna_subset(self, df):
        assert len(df.dropna(subset=["pop"])) == 4

    def test_fillna(self, df):
        out = df.fillna(0.0)
        assert out["pop"].to_list()[3] == 0.0

    def test_isna(self, df):
        na = df.isna()
        assert na["pop"].to_list() == [False, False, False, True, False]


class TestSorting:
    def test_sort_values(self, df):
        out = df.sort_values("pop")
        assert out["pop"].to_list()[:4] == [1.0, 2.0, 3.0, 5.0]
        assert out["pop"].to_list()[4] is None

    def test_sort_descending(self, df):
        assert df.sort_values("n", ascending=False)["n"].to_list() == [5, 4, 3, 2, 1]

    def test_sort_multi_key(self):
        t = DataFrame({"g": ["b", "a", "b", "a"], "v": [2, 1, 1, 2]})
        out = t.sort_values(["g", "v"])
        assert out["g"].to_list() == ["a", "a", "b", "b"]
        assert out["v"].to_list() == [1, 2, 1, 2]

    def test_sort_mixed_directions(self):
        t = DataFrame({"g": ["a", "a", "b"], "v": [1, 2, 0]})
        out = t.sort_values(["g", "v"], ascending=[True, False])
        assert out["v"].to_list() == [2, 1, 0]

    def test_nlargest(self, df):
        assert df.nlargest(2, "n")["n"].to_list() == [5, 4]


class TestStats:
    def test_mean(self, df):
        assert df.mean()["n"] == 3.0

    def test_describe_shape(self, df):
        d = df.describe()
        assert d.columns == ["pop", "n"]
        assert len(d) == 6

    def test_corr_identity_diagonal(self):
        t = DataFrame({"a": [1.0, 2.0, 3.0], "b": [2.0, 4.0, 6.0]})
        c = t.corr()
        assert c["a"].to_list()[0] == pytest.approx(1.0)
        assert c["b"].to_list()[0] == pytest.approx(1.0)

    def test_nunique(self, df):
        assert df.nunique() == {"city": 3, "pop": 4, "n": 5}

    def test_count(self, df):
        assert df.count() == {"city": 4, "pop": 4, "n": 5}


class TestIndexOps:
    def test_set_index(self, df):
        out = df.set_index("city")
        assert out.index.name == "city"
        assert "city" not in out.columns

    def test_reset_index(self, df):
        out = df.set_index("city").reset_index()
        assert out.columns[0] == "city"
        assert out.index.is_default

    def test_reset_index_drop(self, df):
        out = df.set_index("city").reset_index(drop=True)
        assert "city" not in out.columns

    def test_rangeindex_semantics(self):
        idx = RangeIndex(3)
        assert list(idx) == [0, 1, 2]
        assert idx.get_loc(1) == 1
        with pytest.raises(KeyError):
            idx.get_loc(9)

    def test_labelled_index(self):
        idx = Index(["x", "y"], name="k")
        assert idx.get_loc("y") == 1
        assert not idx.is_default


class TestConversion:
    def test_to_records_roundtrip(self, df):
        out = DataFrame(df.to_records())
        assert out.equals(df)

    def test_to_dict(self, df):
        assert df.to_dict()["n"] == [1, 2, 3, 4, 5]

    def test_itertuples(self, df):
        rows = list(df.itertuples())
        assert rows[0] == ("a", 1.0, 1)

    def test_equals(self, df):
        assert df.equals(df.copy())
        assert not df.equals(df.drop("n"))

    def test_content_hash_stable(self, df):
        assert df.content_hash() == df.copy().content_hash()

    def test_content_hash_changes(self, df):
        before = df.content_hash()
        df["n"] = df["n"] * 2
        assert df.content_hash() != before

    def test_repr_contains_dims(self, df):
        # Base DataFrame repr (not the Lux one) reports dimensions.
        text = DataFrame({"a": [1]}).to_string()
        assert "1 rows x 1 columns" in text


class TestSample:
    def test_sample_n(self, df):
        assert len(df.sample(n=2, random_state=0)) == 2

    def test_sample_frac(self, df):
        assert len(df.sample(frac=0.4, random_state=0)) == 2

    def test_sample_deterministic(self, df):
        a = df.sample(n=3, random_state=1)
        b = df.sample(n=3, random_state=1)
        assert a.equals(b)

    def test_sample_requires_one_arg(self, df):
        with pytest.raises(ValueError):
            df.sample()
        with pytest.raises(ValueError):
            df.sample(n=1, frac=0.5)

    def test_sample_caps_at_length(self, df):
        assert len(df.sample(n=100, random_state=0)) == 5


class TestConcat:
    def test_concat_stacks(self, df):
        out = concat([df, df])
        assert len(out) == 10

    def test_concat_union_columns(self):
        a = DataFrame({"x": [1]})
        b = DataFrame({"y": [2.0]})
        out = concat([a, b])
        assert out.columns == ["x", "y"]
        assert out["x"].to_list() == [1, None]

    def test_concat_empty(self):
        assert concat([]).empty
