"""Unit tests for the dtype system and coercion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataframe import dtypes as dt
from repro.dataframe.dtypes import BOOL, DATETIME, FLOAT64, INT64, STRING, coerce


class TestLookup:
    def test_canonical_names(self):
        assert dt.lookup("int64") is INT64
        assert dt.lookup("float64") is FLOAT64
        assert dt.lookup("bool") is BOOL
        assert dt.lookup("string") is STRING
        assert dt.lookup("datetime") is DATETIME

    def test_aliases(self):
        assert dt.lookup("int") is INT64
        assert dt.lookup("float") is FLOAT64
        assert dt.lookup("str") is STRING
        assert dt.lookup("object") is STRING
        assert dt.lookup("datetime64[ns]") is DATETIME

    def test_lookup_passthrough(self):
        assert dt.lookup(INT64) is INT64

    def test_unknown_raises(self):
        with pytest.raises(TypeError):
            dt.lookup("complex128")

    def test_equality_with_string(self):
        assert INT64 == "int64"
        assert not (INT64 == "float64")

    def test_hashable(self):
        assert len({INT64, FLOAT64, INT64}) == 2


class TestInference:
    def test_ints(self):
        assert dt.infer_dtype([1, 2, 3]) is INT64

    def test_floats(self):
        assert dt.infer_dtype([1.5, 2.5]) is FLOAT64

    def test_mixed_numeric_promotes(self):
        assert dt.infer_dtype([1, 2.5]) is FLOAT64

    def test_bools(self):
        assert dt.infer_dtype([True, False]) is BOOL

    def test_strings_dominate(self):
        assert dt.infer_dtype([1, "a"]) is STRING

    def test_none_ignored(self):
        assert dt.infer_dtype([None, 1, None]) is INT64

    def test_all_none_defaults_float(self):
        assert dt.infer_dtype([None, None]) is FLOAT64

    def test_datetimes(self):
        assert dt.infer_dtype([np.datetime64("2020-01-01")]) is DATETIME


class TestCoerce:
    def test_int_list(self):
        values, mask, d = coerce([1, 2, 3])
        assert d is INT64
        assert values.dtype == np.int64
        assert not mask.any()

    def test_none_in_ints_keeps_int_container(self):
        values, mask, d = coerce([1, None, 3], "int64")
        assert d is INT64
        assert mask.tolist() == [False, True, False]

    def test_float_nan_is_missing(self):
        values, mask, d = coerce([1.0, float("nan")])
        assert d is FLOAT64
        assert mask.tolist() == [False, True]

    def test_string_coercion_stringifies(self):
        values, mask, d = coerce([1, "a"], "string")
        assert values.tolist() == ["1", "a"]
        assert d is STRING

    def test_datetime_from_strings(self):
        values, mask, d = coerce(["2020-01-01", None], "datetime")
        assert d is DATETIME
        assert mask.tolist() == [False, True]
        assert values[0] == np.datetime64("2020-01-01", "ns")

    def test_bool_from_numbers(self):
        values, mask, d = coerce([0, 1, 2], "bool")
        assert values.tolist() == [False, True, True]

    def test_ndarray_float_passthrough(self):
        arr = np.array([1.0, np.nan])
        values, mask, d = coerce(arr)
        assert d is FLOAT64
        assert mask.tolist() == [False, True]

    def test_ndarray_int(self):
        values, mask, d = coerce(np.array([1, 2], dtype=np.int32))
        assert d is INT64
        assert values.dtype == np.int64

    def test_ndarray_object_goes_through_inference(self):
        values, mask, d = coerce(np.array(["x", "y"], dtype=object))
        assert d is STRING

    def test_ndarray_unicode(self):
        values, mask, d = coerce(np.array(["x", "y"]))
        assert d is STRING
        assert values.tolist() == ["x", "y"]

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            coerce(np.zeros((2, 2)))

    def test_float_to_int_cast(self):
        values, mask, d = coerce(np.array([1.0, 2.0]), "int64")
        assert d is INT64
        assert values.tolist() == [1, 2]

    def test_int_to_float_cast(self):
        values, mask, d = coerce(np.array([1, 2]), "float64")
        assert d is FLOAT64


class TestHelpers:
    def test_fill_values(self):
        assert np.isnan(dt.fill_value(FLOAT64))
        assert dt.fill_value(INT64) == 0
        assert dt.fill_value(STRING) is None
        assert np.isnat(dt.fill_value(DATETIME))

    def test_is_numeric(self):
        assert dt.is_numeric(INT64) and dt.is_numeric(FLOAT64) and dt.is_numeric(BOOL)
        assert not dt.is_numeric(STRING)
        assert not dt.is_numeric(DATETIME)

    def test_result_dtype_promotion(self):
        assert dt.result_dtype(INT64, FLOAT64) is FLOAT64
        assert dt.result_dtype(INT64, INT64) is INT64
        assert dt.result_dtype(BOOL, BOOL) is INT64
