"""Unit tests for Column: the null-aware typed vector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataframe.column import Column
from repro.dataframe.dtypes import BOOL, DATETIME, FLOAT64, INT64, STRING


@pytest.fixture
def nums() -> Column:
    return Column.from_data([1.0, 2.0, None, 4.0])


@pytest.fixture
def words() -> Column:
    return Column.from_data(["a", "b", None, "a"])


class TestConstruction:
    def test_from_list(self):
        c = Column.from_data([1, 2, 3])
        assert c.dtype is INT64
        assert len(c) == 3

    def test_full_scalar(self):
        c = Column.full(3, "x")
        assert c.to_list() == ["x", "x", "x"]

    def test_full_none(self):
        c = Column.full(2, None, "float64")
        assert c.null_count() == 2

    def test_from_column_copies(self):
        a = Column.from_data([1, 2])
        b = Column.from_data(a)
        b.values[0] = 99
        assert a[0] == 1

    def test_getitem_returns_python_scalars(self):
        c = Column.from_data([1, 2])
        assert isinstance(c[0], int)
        f = Column.from_data([1.5])
        assert isinstance(f[0], float)
        b = Column.from_data([True])
        assert isinstance(b[0], bool)

    def test_masked_getitem_is_none(self, nums):
        assert nums[2] is None

    def test_iteration(self, nums):
        assert list(nums) == [1.0, 2.0, None, 4.0]


class TestSelection:
    def test_take(self, nums):
        out = nums.take(np.array([3, 0]))
        assert out.to_list() == [4.0, 1.0]

    def test_take_negative_gives_missing(self, nums):
        out = nums.take(np.array([0, -1]))
        assert out.to_list() == [1.0, None]

    def test_filter(self, nums):
        out = nums.filter(np.array([True, False, True, False]))
        assert out.to_list() == [1.0, None]

    def test_slice(self, nums):
        assert nums.slice(slice(1, 3)).to_list() == [2.0, None]

    def test_concat_same_dtype(self):
        a = Column.from_data([1, 2])
        b = Column.from_data([3])
        assert a.concat(b).to_list() == [1, 2, 3]

    def test_concat_promotes_numeric(self):
        a = Column.from_data([1, 2])
        b = Column.from_data([1.5])
        out = a.concat(b)
        assert out.dtype is FLOAT64

    def test_concat_falls_back_to_string(self):
        a = Column.from_data([1])
        b = Column.from_data(["x"])
        out = a.concat(b)
        assert out.dtype is STRING
        assert out.to_list() == ["1", "x"]


class TestCasting:
    def test_astype_string(self, nums):
        out = nums.astype("string")
        assert out.to_list() == ["1.0", "2.0", None, "4.0"]

    def test_astype_string_to_float(self):
        c = Column.from_data(["1.5", "bad", None])
        out = c.astype("float64")
        assert out.to_list() == [1.5, None, None]

    def test_astype_string_to_datetime(self):
        c = Column.from_data(["2020-01-02", "junk"])
        out = c.astype("datetime")
        assert out.dtype is DATETIME
        assert out.null_count() == 1

    def test_to_float_has_nan_at_missing(self, nums):
        f = nums.to_float()
        assert np.isnan(f[2])

    def test_to_float_string_raises(self, words):
        with pytest.raises(TypeError):
            words.to_float()


class TestMissing:
    def test_isna(self, nums):
        assert nums.isna().tolist() == [False, False, True, False]

    def test_fillna(self, nums):
        assert nums.fillna(0.0).to_list() == [1.0, 2.0, 0.0, 4.0]

    def test_fillna_string(self, words):
        assert words.fillna("?").to_list() == ["a", "b", "?", "a"]

    def test_dropna(self, nums):
        assert nums.dropna().to_list() == [1.0, 2.0, 4.0]


class TestReductions:
    def test_sum_skips_missing(self, nums):
        assert nums.sum() == 7.0

    def test_mean(self, nums):
        assert nums.mean() == pytest.approx(7 / 3)

    def test_var_matches_numpy(self):
        c = Column.from_data([1.0, 2.0, 3.0, 4.0])
        assert c.var() == pytest.approx(np.var([1, 2, 3, 4], ddof=1))

    def test_min_max(self, nums):
        assert nums.min() == 1.0
        assert nums.max() == 4.0

    def test_min_int_type(self):
        c = Column.from_data([3, 1, 2])
        assert c.min() == 1 and isinstance(c.min(), int)

    def test_min_string(self, words):
        assert words.min() == "a"
        assert words.max() == "b"

    def test_count(self, nums):
        assert nums.count() == 3

    def test_empty_reductions(self):
        c = Column.from_data([], "float64")
        assert c.sum() == 0.0
        assert np.isnan(c.mean())
        assert c.min() is None

    def test_median(self):
        assert Column.from_data([1.0, 2.0, 9.0]).median() == 2.0


class TestUniques:
    def test_unique_order(self, words):
        assert words.unique() == ["a", "b"]

    def test_nunique(self, words):
        assert words.nunique() == 2

    def test_value_counts_sorted(self, words):
        assert words.value_counts() == [("a", 2), ("b", 1)]

    def test_factorize(self, words):
        codes, labels = words.factorize()
        assert codes.tolist() == [0, 1, -1, 0]
        assert labels == ["a", "b"]

    def test_factorize_numeric(self):
        codes, labels = Column.from_data([5, 7, 5]).factorize()
        assert codes.tolist() == [0, 1, 0]
        assert labels == [5, 7]


class TestOps:
    def test_add_scalar(self):
        out = Column.from_data([1, 2]) + 1
        assert out.to_list() == [2, 3]

    def test_add_columns_mask_propagates(self, nums):
        out = nums + nums
        assert out.to_list() == [2.0, 4.0, None, 8.0]

    def test_truediv_is_float(self):
        out = Column.from_data([4, 2]) / Column.from_data([2, 2])
        assert out.dtype is FLOAT64
        assert out.to_list() == [2.0, 1.0]

    def test_compare(self, nums):
        out = nums > 1.5
        assert out.dtype is BOOL
        assert out.values.tolist()[0:2] == [False, True]
        assert out.mask[2]

    def test_string_equality(self, words):
        out = words == "a"
        assert out.values.tolist() == [True, False, False, True]

    def test_and_or_invert(self):
        a = Column.from_data([True, False])
        b = Column.from_data([True, True])
        assert (a & b).values.tolist() == [True, False]
        assert (a | b).values.tolist() == [True, True]
        assert (~a).values.tolist() == [False, True]

    def test_invert_requires_bool(self, nums):
        with pytest.raises(TypeError):
            ~nums

    def test_isin(self, words):
        out = words.isin(["a"])
        assert out.values.tolist() == [True, False, False, True]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Column.from_data([1, 2]) + Column.from_data([1])

    def test_datetime_compare_with_string(self):
        c = Column.from_data(["2020-01-01", "2021-01-01"]).astype("datetime")
        out = c > "2020-06-01"
        assert out.values.tolist() == [False, True]


class TestSorting:
    def test_argsort_ascending(self):
        c = Column.from_data([3.0, 1.0, 2.0])
        assert c.argsort().tolist() == [1, 2, 0]

    def test_argsort_descending(self):
        c = Column.from_data([3.0, 1.0, 2.0])
        assert c.argsort(ascending=False).tolist() == [0, 2, 1]

    def test_argsort_missing_last(self, nums):
        order = nums.argsort()
        assert order[-1] == 2

    def test_argsort_strings(self, words):
        order = words.argsort()
        assert order.tolist()[:3] == [0, 3, 1]
        assert order[-1] == 2

    def test_argsort_stable(self):
        c = Column.from_data([1, 1, 0])
        assert c.argsort().tolist() == [2, 0, 1]


class TestEquals:
    def test_equals_same(self, nums):
        assert nums.equals(nums.copy())

    def test_not_equal_different_mask(self, nums):
        other = nums.fillna(0.0)
        assert not nums.equals(other)

    def test_not_equal_different_dtype(self):
        assert not Column.from_data([1]).equals(Column.from_data([1.0]))
