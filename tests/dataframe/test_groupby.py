"""Unit tests for GroupBy aggregation kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataframe import DataFrame
from repro.dataframe.groupby import normalize_aggfunc


@pytest.fixture
def sales() -> DataFrame:
    return DataFrame(
        {
            "region": ["n", "s", "n", "s", "n", None],
            "product": ["x", "x", "y", "y", "x", "x"],
            "amount": [10.0, 20.0, 30.0, None, 50.0, 60.0],
            "units": [1, 2, 3, 4, 5, 6],
        }
    )


class TestSingleKey:
    def test_mean(self, sales):
        out = sales.groupby("region").mean()
        assert out.index.to_list() == ["n", "s"]
        assert out["amount"].to_list() == [30.0, 20.0]

    def test_sum(self, sales):
        out = sales.groupby("region").sum()
        assert out["units"].to_list() == [9, 6]

    def test_count_skips_missing_values(self, sales):
        out = sales.groupby("region").count()
        assert out["amount"].to_list() == [3, 1]

    def test_min_max(self, sales):
        out = sales.groupby("region").min()
        assert out["units"].to_list() == [1, 2]
        assert sales.groupby("region").max()["units"].to_list() == [5, 4]

    def test_var_matches_numpy(self, sales):
        out = sales.groupby("region").var()
        expected = np.var([10.0, 30.0, 50.0], ddof=1)
        assert out["amount"].to_list()[0] == pytest.approx(expected)

    def test_var_single_element_group_is_missing(self, sales):
        out = sales.groupby("region").var()
        assert out["amount"].to_list()[1] is None

    def test_median(self, sales):
        out = sales.groupby("region").median()
        assert out["amount"].to_list()[0] == 30.0

    def test_first(self, sales):
        out = sales.groupby("region").first()
        assert out["product"].to_list() == ["x", "x"]

    def test_std_is_sqrt_var(self, sales):
        v = sales.groupby("region").var()["amount"].to_list()[0]
        s = sales.groupby("region").std()["amount"].to_list()[0]
        assert s == pytest.approx(np.sqrt(v))

    def test_size(self, sales):
        out = sales.groupby("region").size()
        assert out.to_list() == [3, 2]

    def test_size_frame(self, sales):
        out = sales.groupby("region").size_frame()
        assert out["count"].to_list() == [3, 2]
        assert out["region"].to_list() == ["n", "s"]

    def test_missing_key_rows_dropped(self, sales):
        out = sales.groupby("region").sum()
        assert len(out) == 2  # the None region row is excluded

    def test_agg_dict(self, sales):
        out = sales.groupby("region").agg({"amount": "mean", "units": "sum"})
        assert out.columns == ["amount", "units"]

    def test_agg_list(self, sales):
        out = sales.groupby("region").agg(["mean", "sum"])
        assert "amount_mean" in out.columns
        assert "units_sum" in out.columns

    def test_agg_numpy_callable(self, sales):
        out = sales.groupby("region").agg({"amount": np.mean})
        assert out["amount"].to_list() == [30.0, 20.0]

    def test_index_is_labelled(self, sales):
        out = sales.groupby("region").mean()
        assert out.index.name == "region"
        assert not out.index.is_default

    def test_unknown_key_raises(self, sales):
        with pytest.raises(KeyError):
            sales.groupby("nope")


class TestMultiKey:
    def test_multikey_keys_as_columns(self, sales):
        out = sales.groupby(["region", "product"]).mean()
        assert out.columns[:2] == ["region", "product"]
        assert out.index.is_default

    def test_multikey_values(self, sales):
        out = sales.groupby(["region", "product"]).sum()
        rec = {
            (r["region"], r["product"]): r["units"] for r in out.to_records()
        }
        assert rec[("n", "x")] == 6
        assert rec[("n", "y")] == 3
        assert rec[("s", "y")] == 4

    def test_multikey_size_frame(self, sales):
        out = sales.groupby(["region", "product"]).size_frame()
        total = sum(out["count"].to_list())
        assert total == 5  # None-region row dropped


class TestColumnSubsetting:
    def test_series_groupby_mean(self, sales):
        s = sales.groupby("region")["amount"].mean()
        assert s.to_list() == [30.0, 20.0]
        assert s.index.to_list() == ["n", "s"]

    def test_series_groupby_agg(self, sales):
        s = sales.groupby("region")["units"].agg("max")
        assert s.to_list() == [5, 4]

    def test_groupby_list_subset(self, sales):
        out = sales.groupby("region")[["units"]].sum()
        assert out.columns == ["units"]

    def test_missing_column_raises(self, sales):
        with pytest.raises(KeyError):
            sales.groupby("region")["nope"]


class TestIteration:
    def test_iter_groups(self, sales):
        groups = dict(iter(sales.groupby("region")))
        assert set(groups) == {"n", "s"}
        assert len(groups["n"]) == 3

    def test_ngroups(self, sales):
        assert sales.groupby("region").ngroups == 2

    def test_iter_multikey_tuple_keys(self, sales):
        keys = [k for k, _ in sales.groupby(["region", "product"])]
        assert ("n", "x") in keys


class TestAggAliases:
    @pytest.mark.parametrize(
        "alias,expected",
        [("avg", "mean"), ("average", "mean"), ("size", "count"), ("stdev", "std")],
    )
    def test_aliases(self, alias, expected):
        assert normalize_aggfunc(alias) == expected

    def test_numpy_functions(self):
        assert normalize_aggfunc(np.var) == "var"
        assert normalize_aggfunc(np.mean) == "mean"

    def test_unknown_raises(self):
        with pytest.raises(TypeError):
            normalize_aggfunc("frobnicate")
        with pytest.raises(TypeError):
            normalize_aggfunc(lambda x: x)


class TestGroupbySumLoopEquivalence:
    def test_against_manual_loop(self):
        rng = np.random.default_rng(3)
        frame = DataFrame(
            {
                "k": rng.choice(["a", "b", "c", "d"], 500).tolist(),
                "v": rng.normal(0, 1, 500),
            }
        )
        out = frame.groupby("k").sum()
        got = dict(zip(out.index.to_list(), out["v"].to_list()))
        expected: dict[str, float] = {}
        for k, v in zip(frame["k"].to_list(), frame["v"].to_list()):
            expected[k] = expected.get(k, 0.0) + v
        for k in expected:
            assert got[k] == pytest.approx(expected[k])
