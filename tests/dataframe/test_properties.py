"""Property-based tests (hypothesis) on core dataframe invariants."""

from __future__ import annotations

import io

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dataframe import DataFrame, Series, cut, merge, qcut, read_csv, to_csv

keys = st.lists(
    st.sampled_from(["a", "b", "c", "d", "e"]), min_size=1, max_size=60
)
floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@given(ks=keys, data=st.data())
@settings(max_examples=60, deadline=None)
def test_groupby_sum_equals_loop(ks, data):
    vs = data.draw(st.lists(floats, min_size=len(ks), max_size=len(ks)))
    frame = DataFrame({"k": ks, "v": vs})
    out = frame.groupby("k").sum()
    got = dict(zip(out.index.to_list(), out["v"].to_list()))
    expected: dict[str, float] = {}
    for k, v in zip(ks, vs):
        expected[k] = expected.get(k, 0.0) + v
    assert set(got) == set(expected)
    for k in expected:
        assert got[k] == pytest.approx(expected[k], rel=1e-9, abs=1e-6)


@given(ks=keys)
@settings(max_examples=60, deadline=None)
def test_groupby_sizes_sum_to_length(ks):
    frame = DataFrame({"k": ks})
    assert sum(frame.groupby("k").size().to_list()) == len(ks)


@given(
    lk=st.lists(st.integers(0, 5), min_size=0, max_size=30),
    rk=st.lists(st.integers(0, 5), min_size=0, max_size=30),
)
@settings(max_examples=60, deadline=None)
def test_merge_matches_nested_loop(lk, rk):
    a = DataFrame({"k": lk, "v": list(range(len(lk)))})
    b = DataFrame({"k": rk, "w": list(range(len(rk)))})
    out = merge(a, b, on="k") if lk or rk else None
    if out is None:
        return
    expected = sorted(
        (k1, v, w)
        for k1, v in zip(lk, range(len(lk)))
        for k2, w in zip(rk, range(len(rk)))
        if k1 == k2
    )
    got = sorted(zip(out["k"].to_list(), out["v"].to_list(), out["w"].to_list()))
    assert got == expected


@given(vs=st.lists(floats, min_size=1, max_size=80))
@settings(max_examples=60, deadline=None)
def test_sort_is_a_permutation(vs):
    frame = DataFrame({"v": vs})
    out = frame.sort_values("v")
    assert sorted(out["v"].to_list()) == sorted(vs)
    values = out["v"].to_list()
    assert all(values[i] <= values[i + 1] for i in range(len(values) - 1))


@given(vs=st.lists(floats, min_size=4, max_size=100), q=st.integers(2, 5))
@settings(max_examples=60, deadline=None)
def test_qcut_is_a_partition(vs, q):
    if len(set(vs)) < 2:
        return
    out = qcut(Series(vs), q)
    labels = out.to_list()
    # Every non-missing input lands in exactly one bin.
    assert all(lab is not None for lab in labels)
    assert out.nunique() <= q


@given(vs=st.lists(floats, min_size=2, max_size=100))
@settings(max_examples=60, deadline=None)
def test_cut_respects_bin_count(vs):
    if len(set(vs)) < 2:
        return
    out = cut(Series(vs), 4)
    assert out.nunique() <= 4


@given(
    ints=st.lists(st.integers(-1000, 1000), min_size=1, max_size=40),
    words=st.lists(
        st.text(
            alphabet=st.characters(whitelist_categories=("Lu", "Ll")),
            min_size=1,
            max_size=8,
        ),
        min_size=1,
        max_size=40,
    ),
)
@settings(max_examples=50, deadline=None)
def test_csv_roundtrip(ints, words):
    n = min(len(ints), len(words))
    frame = DataFrame({"i": ints[:n], "s": words[:n]})
    buf = io.StringIO()
    to_csv(frame, buf)
    buf.seek(0)
    back = read_csv(buf, parse_dates=False)
    assert back["i"].to_list() == frame["i"].to_list()
    # Letter-only strings are not re-inferred as numbers, but missing-marker
    # words ("NA", "null", ...) round-trip to missing.
    from repro.dataframe.io import _MISSING

    expected = [
        None if v.lower() in _MISSING else v for v in frame["s"].to_list()
    ]
    assert back["s"].to_list() == expected


@given(vs=st.lists(floats, min_size=1, max_size=50))
@settings(max_examples=60, deadline=None)
def test_filter_complement_partitions_frame(vs):
    frame = DataFrame({"v": vs})
    cond = frame["v"] > 0
    assert len(frame[cond]) + len(frame[~cond]) == len(frame)


@given(vs=st.lists(st.integers(-50, 50), min_size=1, max_size=50))
@settings(max_examples=60, deadline=None)
def test_value_counts_total(vs):
    s = Series(vs)
    assert sum(s.value_counts().to_list()) == len(vs)
    assert s.nunique() == len(set(vs))


@given(vs=st.lists(floats, min_size=2, max_size=60))
@settings(max_examples=40, deadline=None)
def test_mean_between_min_and_max(vs):
    s = Series(vs)
    assert s.min() - 1e-9 <= s.mean() <= s.max() + 1e-9
