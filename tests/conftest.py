"""Shared fixtures: config isolation and common frames."""

from __future__ import annotations

import numpy as np
import pytest

from repro import LuxDataFrame, config_overlay


@pytest.fixture(autouse=True)
def _config_isolation():
    """Every test runs against pristine config and restores it afterwards."""
    with config_overlay():
        yield
        from repro.core.optimizer.scheduler import drain_all

        drain_all()


@pytest.fixture
def employees() -> LuxDataFrame:
    """A small mixed-type frame used across core tests."""
    rng = np.random.default_rng(42)
    n = 400
    return LuxDataFrame(
        {
            "Age": np.round(rng.normal(40, 10, n), 1),
            "MonthlyIncome": np.round(rng.lognormal(8.5, 0.6, n), 2),
            "HourlyRate": np.round(rng.uniform(20, 120, n), 2),
            "Education": rng.choice(["HS", "BS", "MS", "PhD"], n).tolist(),
            "Department": rng.choice(["Sales", "Eng", "Ops"], n, p=[0.5, 0.3, 0.2]).tolist(),
            "Attrition": rng.choice(["Yes", "No"], n, p=[0.2, 0.8]).tolist(),
            "Country": rng.choice(
                ["France", "Germany", "Japan", "Brazil", "Kenya"], n
            ).tolist(),
        }
    )


@pytest.fixture
def tiny() -> LuxDataFrame:
    return LuxDataFrame(
        {
            "city": ["a", "b", "a", "c", None],
            "pop": [1.0, 2.0, 3.0, None, 5.0],
            "n": [1, 2, 3, 4, 5],
        }
    )
