"""Integration test: the full example workflow of §3 (Alice, HPI + COVID).

Follows the paper's Figures 1-4 step by step: always-on overview, intent
steering, load + join of the stringency data, qcut binning, and the final
outlier investigation with export.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import LuxDataFrame, Vis
from repro.data import make_covid_stringency, make_hpi
from repro.dataframe import qcut


@pytest.fixture
def df() -> LuxDataFrame:
    return make_hpi()


class TestFigure1AlwaysOnOverview:
    def test_print_shows_overview_actions(self, df):
        recs = df.recommendations
        names = recs.keys()
        assert "Correlation" in names
        assert "Distribution" in names
        assert "Geographic" in names

    def test_correlation_surfaces_inequality_vs_life(self, df):
        # §3: "negative correlation between AvrgLifeExpectancy and Inequality".
        top = df.recommendations["Correlation"][0]
        assert {top.spec.x.field, top.spec.y.field} == {
            "AvrgLifeExpectancy",
            "Inequality",
        }
        assert top.score > 0.7

    def test_geographic_action_builds_choropleths(self, df):
        geo = df.recommendations["Geographic"]
        assert all(v.mark == "geoshape" for v in geo)


class TestFigure2IntentSteering:
    def test_intent_display(self, df):
        df.intent = ["AvrgLifeExpectancy", "Inequality"]
        recs = df.recommendations
        current = recs["Current Vis"][0]
        assert current.mark == "point"

    def test_enhance_includes_g10_breakdown(self, df):
        df.intent = ["AvrgLifeExpectancy", "Inequality"]
        enhance = df.recommendations["Enhance"]
        colors = {v.spec.color.field for v in enhance if v.spec.color is not None}
        assert "G10" in colors
        assert "Region" in colors

    def test_g10_separation_is_visible(self, df):
        # G10 countries cluster at low inequality / high life expectancy.
        g10 = df[df["G10"] == "true"]
        rest = df[df["G10"] == "false"]
        assert g10["Inequality"].mean() < rest["Inequality"].mean()
        assert g10["AvrgLifeExpectancy"].mean() > rest["AvrgLifeExpectancy"].mean()


class TestFigure3LoadJoinCleanVisualize:
    def test_step1_load_and_join(self, df):
        covid = make_covid_stringency()
        result = covid.merge(df, left_on=["Entity", "Code"], right_on=["Country", "iso3"])
        assert isinstance(result, LuxDataFrame)
        assert len(result) > 30
        assert "stringency" in result.columns

    def test_step2_intent_on_stringency(self, df):
        covid = make_covid_stringency()
        result = covid.merge(df, left_on=["Entity", "Code"], right_on=["Country", "iso3"])
        result.intent = ["stringency"]
        current = result.recommendations["Current Vis"][0]
        assert current.mark == "histogram"

    def test_stringency_right_skewed(self):
        # Fig. 3 left: "the histogram of stringency is heavily right-skewed".
        covid = make_covid_stringency()
        values = np.asarray(
            [v for v in covid["stringency"].to_list() if v is not None]
        )
        from scipy import stats

        assert stats.skew(values) > 0.5

    def test_step3_qcut_binning(self, df):
        covid = make_covid_stringency()
        result = covid.merge(df, left_on=["Entity", "Code"], right_on=["Country", "iso3"])
        result["stringency_level"] = qcut(
            result["stringency"], 2, labels=["Low", "High"]
        )
        # Exactly the paper's call: result.drop(columns=["stringency"]).
        result = result.drop(columns=["stringency"])
        assert "stringency_level" in result.columns
        assert result.data_types["stringency_level"] == "nominal"


class TestFigure4OutlierInvestigation:
    @pytest.fixture
    def result(self, df) -> LuxDataFrame:
        covid = make_covid_stringency()
        merged = covid.merge(df, left_on=["Entity", "Code"], right_on=["Country", "iso3"])
        merged["stringency_level"] = qcut(
            merged["stringency"], 2, labels=["Low", "High"]
        )
        return merged.drop("stringency")

    def test_enhance_shows_stringency_breakdown(self, result):
        result.intent = ["AvrgLifeExpectancy", "Inequality"]
        enhance = result.recommendations["Enhance"]
        colors = {v.spec.color.field for v in enhance if v.spec.color is not None}
        assert "stringency_level" in colors

    def test_outlier_filter_finds_praised_countries(self, result):
        # Fig. 4 left: high-inequality + strict-response outliers include the
        # countries praised for early response despite limited resources.
        outliers = result[
            (result["Inequality"] > 0.35) & (result["stringency_level"] == "High")
        ]
        names = set(outliers["Country"].to_list())
        assert {"Afghanistan", "Pakistan", "Rwanda"} <= names

    def test_export_to_vis_and_code(self, result):
        result.intent = ["AvrgLifeExpectancy", "Inequality"]
        vis = result.export("Current Vis", 0)
        assert vis in list(result.exported)
        code = vis.to_altair_code()
        assert "Inequality" in code and "AvrgLifeExpectancy" in code
        mpl = vis.to_matplotlib_code()
        assert "plt.scatter" in mpl


class TestSmallFilteredFrameShowsParent:
    def test_prefilter_recommendation(self, df):
        tiny = df[df["HappyPlanetIndex"] > df["HappyPlanetIndex"].max() - 0.01]
        assert len(tiny) <= 5
        recs = tiny.recommendations
        assert "Pre-filter" in recs.keys()
        assert len(recs["Pre-filter"]) >= 1
