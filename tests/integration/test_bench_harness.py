"""Integration tests for the benchmark harness (conditions + notebooks)."""

from __future__ import annotations

import pytest

from repro import config
from repro.bench import (
    CONDITIONS,
    build_airbnb_notebook,
    build_communities_notebook,
    condition,
    fit_power_law,
    format_table,
    recall_at_k,
)


class TestConditions:
    def test_condition_restores(self):
        before = config.snapshot()
        with condition("no-opt"):
            assert not config.lazy_maintain
        assert config.snapshot() == before

    def test_all_conditions_valid(self):
        for name in CONDITIONS:
            with condition(name):
                pass


class TestWorkloadShapes:
    def test_airbnb_cell_counts_match_table3(self):
        counts = build_airbnb_notebook(100).counts()
        assert counts == {"print_df": 14, "print_series": 7, "code": 17}

    def test_communities_cell_counts_match_table3(self):
        counts = build_communities_notebook(100).counts()
        assert counts == {"print_df": 14, "print_series": 4, "code": 25}


class TestNotebookRuns:
    @pytest.mark.parametrize("cond", ["pandas", "all-opt", "wflow"])
    def test_airbnb_runs(self, cond):
        result = build_airbnb_notebook(800, seed=1).run(cond)
        assert len(result.timings) == 38
        assert result.total() > 0

    @pytest.mark.slow
    def test_communities_runs_small(self):
        result = build_communities_notebook(150, seed=1).run("all-opt")
        assert result.count("print_df") == 14

    def test_pandas_condition_is_fastest(self):
        # Compare against the synchronous wflow condition (all-opt streams
        # laggard actions in the background, making wall-clock comparisons
        # on a shared CPU noisy).
        nb = build_airbnb_notebook(2000, seed=0)
        t_pandas = nb.run("pandas").total("print_df")
        t_lux = nb.run("wflow").total("print_df")
        assert t_pandas < t_lux  # always-on costs something

    def test_overhead_definition(self):
        # Table 3 overhead = all-opt minus pandas, per cell type.
        nb = build_airbnb_notebook(1000, seed=0)
        all_opt = nb.run("all-opt").by_kind()
        pandas = nb.run("pandas").by_kind()
        overhead = {k: all_opt[k] - pandas[k] for k in all_opt}
        assert overhead["print_df"] > 0
        # Non-Lux operations incur (almost) zero overhead under all-opt.
        assert overhead["code"] < 0.5 * pandas["code"] + 0.2


class TestMeasureHelpers:
    def test_power_law_recovers_exponent(self):
        xs = [10, 20, 40, 80, 160]
        ys = [x**2.5 * 3.0 for x in xs]
        p, c = fit_power_law(xs, ys)
        assert p == pytest.approx(2.5, abs=0.01)
        assert c == pytest.approx(3.0, rel=0.05)

    def test_recall_at_k(self):
        assert recall_at_k([1, 2, 3], [1, 2, 3], 3) == 1.0
        assert recall_at_k([1, 2, 9], [1, 2, 3], 3) == pytest.approx(2 / 3)
        assert recall_at_k([9, 8, 7], [1, 2, 3], 3) == 0.0

    def test_recall_shorter_exact(self):
        assert recall_at_k([1, 2], [1], 15) == 1.0

    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 0.001]], title="T")
        assert "T" in text and "2.500" in text
