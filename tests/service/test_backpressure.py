"""Backpressure: the bounded precompute backlog, end to end.

The contract under test (``config.precompute_queue_limit``):

- the backlog (armed debounce timers + live passes) never exceeds the
  bound — excess triggers are deferred FIFO and resumed as passes
  complete;
- :meth:`PrecomputeEngine.admit` rejects mutation-facing writes at
  saturation with a sane ``Retry-After``, and the HTTP layer maps that
  to 429 + a ``Retry-After`` header with **no side effects**;
- the check-then-enqueue race is closed: a slot freed (shed) between
  "is it full?" and "enqueue" is used, not spuriously rejected;
- once the backlog drains, nothing was lost — retried writes succeed
  and reads serve complete passes.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import LuxDataFrame, config, register_action, remove_action
from repro.core.vislist import VisList
from repro.service import QueueSaturated, SessionManager, make_server


def make_frame(n: int = 400, seed: int = 0) -> LuxDataFrame:
    rng = np.random.default_rng(seed)
    return LuxDataFrame(
        {
            "q0": np.round(rng.normal(0, 1, n), 6),
            "q1": np.round(rng.lognormal(1, 0.4, n), 6),
            "d0": rng.choice(["a", "b", "c"], n).tolist(),
        }
    )


@pytest.fixture
def manager():
    config.precompute_debounce_s = 0.0
    m = SessionManager()
    yield m
    m.shutdown()


class TestSessionMutate:
    def test_touch_bumps_version_not_content(self, manager):
        config.precompute = False
        session = manager.create(make_frame())
        before = session.version
        values = list(session.frame["q0"].values)
        session.mutate("q0")
        assert session.version != before
        assert list(session.frame["q0"].values) == values

    def test_values_assign_and_create(self, manager):
        config.precompute = False
        session = manager.create(make_frame(n=5))
        session.mutate("q0", [1, 2, 3, 4, 5])
        assert [int(v) for v in session.frame["q0"].values] == [1, 2, 3, 4, 5]
        session.mutate("fresh", [0, 0, 1, 1, 2])
        assert "fresh" in session.frame.columns

    def test_touch_unknown_column_raises(self, manager):
        config.precompute = False
        session = manager.create(make_frame())
        with pytest.raises(KeyError):
            session.mutate("nope")

    def test_values_length_mismatch_raises(self, manager):
        config.precompute = False
        session = manager.create(make_frame(n=5))
        with pytest.raises(ValueError):
            session.mutate("q0", [1, 2])


class TestAdmission:
    def test_admit_rejects_at_limit_and_recovers(self, manager):
        config.precompute = False  # manual scheduling only
        sessions = [manager.create(make_frame(seed=i)) for i in range(2)]
        config.precompute_queue_limit = 2
        config.precompute_debounce_s = 30.0  # keep timers armed
        for session in sessions:
            manager.engine.schedule(session)
        assert manager.engine.backlog_depth() == 2
        with pytest.raises(QueueSaturated) as excinfo:
            manager.engine.admit()
        assert 1 <= excinfo.value.retry_after_s <= 60
        assert manager.engine.stats()["rejected"] == 1

        # Drain: re-arm immediately (pops the long timers), run dry.
        for session in sessions:
            manager.engine.schedule(session, immediate=True)
        assert manager.engine.wait_idle(60)
        manager.engine.admit()  # no raise: recovery after drain
        assert manager.engine.stats()["rejected"] == 1

    def test_admit_noop_when_unbounded(self, manager):
        config.precompute_queue_limit = 0
        manager.engine.admit()  # never raises

    def test_race_slot_freed_under_lock_is_used(self, manager):
        """A stale in-flight pass fills the queue; admit() must shed it
        inside its own lock hold and admit — the TOCTOU the design
        closes — instead of rejecting against a doomed slot."""
        config.precompute = False
        config.precompute_queue_limit = 1
        started = threading.Event()
        gate = threading.Event()

        def blocking_action(ldf):
            started.set()
            gate.wait(15)
            return VisList(visualizations=[])

        register_action(
            "Blocker",
            blocking_action,
            condition=lambda ldf: "q0" in ldf.columns,
        )
        try:
            session = manager.create(make_frame())
            manager.engine.schedule(session, immediate=True)
            assert started.wait(30)
            assert manager.engine.backlog_depth() == 1
            # The frame moves on: the blocked pass is now stale.  With
            # precompute off nothing reschedules, so the stale pass still
            # occupies the only slot when admit() runs.
            session.frame["extra"] = session.frame["q0"]
            manager.engine.admit()  # sheds the stale pass; must NOT raise
            stats = manager.engine.stats()
            assert stats["shed_stale"] >= 1
            assert stats["rejected"] == 0
            assert manager.engine.backlog_depth() == 0
        finally:
            gate.set()
            remove_action("Blocker")
            assert manager.engine.wait_idle(60)

    def test_backlog_bounded_and_deferred_resume_fifo(self, manager):
        """Five sessions, bound of three: the backlog never exceeds the
        limit, the overflow defers, and every deferred session's pass
        still lands after the drain (deferral is not loss)."""
        config.precompute = False
        config.precompute_queue_limit = 3
        started = threading.Event()
        gate = threading.Event()

        def blocking_action(ldf):
            started.set()
            gate.wait(20)
            return VisList(visualizations=[])

        register_action(
            "Blocker",
            blocking_action,
            condition=lambda ldf: "q0" in ldf.columns,
        )
        try:
            sessions = [manager.create(make_frame(seed=i)) for i in range(5)]
            for session in sessions:
                manager.engine.schedule(session, immediate=True)
            assert started.wait(30)
            stats = manager.engine.stats()
            assert stats["backlog_depth"] <= 3
            assert stats["deferred_pending"] == 2
            gate.set()
            assert manager.engine.wait_idle(120), manager.engine.stats()
            stats = manager.engine.stats()
            assert stats["resumed"] == 2
            assert stats["deferred_pending"] == 0
            # Every session — deferred or not — has a complete pass.
            for session in sessions:
                assert session.recommendations(compute=False) is not None
        finally:
            gate.set()
            remove_action("Blocker")
            assert manager.engine.wait_idle(120)

    def test_unwatch_drops_deferred_session(self, manager):
        config.precompute = False
        config.precompute_queue_limit = 1
        config.precompute_debounce_s = 30.0
        holder = manager.create(make_frame(seed=0))
        parked = manager.create(make_frame(seed=1))
        manager.engine.schedule(holder)  # long timer occupies the slot
        manager.engine.schedule(parked)  # saturated -> deferred
        assert manager.engine.stats()["deferred_pending"] == 1
        manager.close(parked.id)
        assert manager.engine.stats()["deferred_pending"] == 0


# ----------------------------------------------------------------------
# HTTP layer (real server: slow, left to the full matrix)
# ----------------------------------------------------------------------

CSV = "a,b,c\n" + "\n".join(f"{i % 7},{i * 1.5},g{i % 3}" for i in range(120))


def call(server, method: str, path: str, body=None):
    """One request -> (status, headers, parsed body)."""
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        server.address + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, dict(response.headers), json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


@pytest.mark.slow
class TestHTTPBackpressure:
    @pytest.fixture
    def server(self):
        config.precompute_debounce_s = 0.0
        srv = make_server().serve_background()
        yield srv
        srv.manager.shutdown()
        srv.stop()

    def test_mutate_endpoint(self, server):
        status, _, info = call(server, "POST", "/sessions", {"csv": CSV})
        assert status == 201
        sid = info["session"]
        v0 = info["data_version"]

        status, _, info = call(
            server, "POST", f"/sessions/{sid}/mutate", {"column": "a"}
        )
        assert status == 200
        assert info["data_version"] != v0

        status, _, info = call(
            server,
            "POST",
            f"/sessions/{sid}/mutate",
            {"column": "derived", "values": [i % 3 for i in range(120)]},
        )
        assert status == 200
        assert "derived" in info["columns"]

        status, _, body = call(
            server, "POST", f"/sessions/{sid}/mutate", {"column": "ghost"}
        )
        assert status == 404
        status, _, body = call(
            server,
            "POST",
            f"/sessions/{sid}/mutate",
            {"column": "a", "values": [1, 2]},
        )
        assert status == 400
        status, _, body = call(
            server, "POST", f"/sessions/{sid}/mutate", {}
        )
        assert status == 400

    def test_429_retry_after_and_drain(self, server):
        sids = []
        for _ in range(3):
            status, _, info = call(
                server, "POST", "/sessions", {"csv": CSV}
            )
            assert status == 201
            sids.append(info["session"])
        assert server.manager.engine.wait_idle(60)

        # Tighten the bound *after* the creations settle; a wide
        # debounce keeps each write's timer armed (= a backlog slot).
        config.precompute_queue_limit = 2
        config.precompute_debounce_s = 2.0  # wide: three fast requests fit
        statuses = []
        retry_after = None
        for sid in sids:
            status, headers, body = call(
                server, "POST", f"/sessions/{sid}/mutate", {"column": "a"}
            )
            statuses.append(status)
            if status == 429:
                retry_after = headers.get("Retry-After")
                assert body["retry_after_s"] == int(retry_after)
        assert statuses == [200, 200, 429]
        assert retry_after is not None and 1 <= int(retry_after) <= 60

        # The rejected write had no side effects: the session's version
        # is untouched and a post-drain retry succeeds.
        assert server.manager.engine.wait_idle(120)
        status, _, _ = call(
            server, "POST", f"/sessions/{sids[-1]}/mutate", {"column": "a"}
        )
        assert status == 200
        assert server.manager.engine.wait_idle(120)
        status, _, recs = call(
            server, "GET", f"/sessions/{sids[-1]}/recommendations"
        )
        assert status == 200 and recs["actions"]

    def test_healthz_exposes_backlog_and_queue_stats(self, server):
        status, _, health = call(server, "GET", "/healthz")
        assert status == 200
        precompute = health["precompute"]
        assert {"backlog_depth", "queue_limit", "deferred_pending",
                "avg_pass_ms", "rejected", "shed_stale", "deferred",
                "resumed"} <= set(precompute)
        assert precompute["queue_limit"] == config.precompute_queue_limit
        queues = health["pool"]["queues"]
        assert set(queues) == {"interactive", "background"}
        assert isinstance(queues["interactive"], dict)
        assert "bytes_peak" in health["store"]
