"""Shard routing, the worker RPC vocabulary, and the supervisor tier.

Fast tests drive :class:`~repro.service.shard.ShardService` in-process
(no sockets, no spawn) — the dispatcher and its error encoding are pure
functions of one SessionManager.  The ``slow`` tests spawn real worker
processes through :class:`~repro.service.supervisor.Supervisor` and
exercise the full story: routing, pre-serialized payload passthrough,
dead-worker health reporting, and crash → warm recovery from snapshots.
"""

from __future__ import annotations

import collections
import json

import pytest

from repro.core.config import config, config_overlay
from repro.core.errors import LuxError
from repro.data.synthetic import make_scenario
from repro.service import (
    SessionManager,
    ShardService,
    Supervisor,
    WorkerUnreachable,
    shard_for,
)
from repro.service.precompute import QueueSaturated
from repro.service.shard import (
    RequestError,
    decode_frame,
    encode_error,
    encode_frame,
    raise_error,
)


# ----------------------------------------------------------------------
# Routing hash
# ----------------------------------------------------------------------
def test_shard_for_is_deterministic_and_in_range():
    for n in (1, 2, 3, 8):
        for i in range(50):
            sid = f"session-{i:04d}"
            shard = shard_for(sid, n)
            assert 0 <= shard < n
            assert shard == shard_for(sid, n)  # same process
    assert shard_for("anything", 1) == 0


def test_shard_for_spreads_sessions():
    counts = collections.Counter(
        shard_for(f"s{i}", 4) for i in range(400)
    )
    assert set(counts) == {0, 1, 2, 3}
    assert min(counts.values()) > 400 // 4 // 3  # no starved shard


def test_shard_for_survives_interpreter_restart():
    """The routing hash is keyed content, not salted ``hash()``.

    These pinned values must hold in every process that ever routes or
    restores a session — a change here orphans existing snapshots.
    """
    assert shard_for("abc123", 4) == 1
    assert shard_for("session-0001", 4) == 3
    assert shard_for("ffffffffffff", 8) == 6


# ----------------------------------------------------------------------
# Error encoding across the pipe
# ----------------------------------------------------------------------
def test_error_round_trip_preserves_types():
    with pytest.raises(RequestError) as excinfo:
        raise_error(encode_error(RequestError(404, "gone")))
    assert excinfo.value.status == 404
    with pytest.raises(QueueSaturated) as excinfo:
        raise_error(encode_error(QueueSaturated(retry_after_s=7)))
    assert excinfo.value.retry_after_s == 7
    with pytest.raises(KeyError):
        raise_error(encode_error(KeyError("no such session")))
    with pytest.raises(ValueError):
        raise_error(encode_error(ValueError("bad clause")))
    with pytest.raises(ValueError):  # LuxError maps to a 400 shape
        raise_error(encode_error(LuxError("bad intent")))
    with pytest.raises(WorkerUnreachable):
        raise_error({"kind": "unreachable", "message": "died"})
    with pytest.raises(RuntimeError):
        raise_error(encode_error(ZeroDivisionError("boom")))


# ----------------------------------------------------------------------
# Frame codec: raw payload hoisting
# ----------------------------------------------------------------------
def test_frame_codec_round_trips_plain_responses():
    for response in (
        {"id": 1, "ok": True, "result": {"session": "abc", "rows": 10}},
        {"id": 2, "ok": False, "error": {"kind": "not_found",
                                         "message": "gone"}},
        {"id": 3, "ok": True, "result": {"payload_json": "x",
                                         "extra": 1}},  # not hoistable
    ):
        assert decode_frame(encode_frame(response)) == response


def test_frame_codec_hoists_payload_without_reencoding():
    """A pre-serialized payload rides after the envelope verbatim —
    never JSON-escaped a second time (the whole point: reads move
    megabyte payloads and double serialization dominated warm reads)."""
    payload = json.dumps({"actions": ["Correlation"], "quote": 'a"b'})
    frame = encode_frame(
        {"id": 7, "ok": True, "result": {"payload_json": payload}}
    )
    envelope, sep, tail = frame.partition(b"\x00")
    assert sep and tail == payload.encode("utf-8")  # verbatim bytes
    assert len(envelope) < 64  # payload not embedded in the envelope
    assert decode_frame(frame) == {
        "id": 7, "ok": True, "result": {"payload_json": payload},
    }


def test_frame_codec_payload_may_contain_nul_bytes():
    weird = 'text with a \\u0000 escape and a " quote'
    frame = encode_frame(
        {"id": 1, "ok": True, "result": {"payload_json": weird + "\x00tail"}}
    )
    decoded = decode_frame(frame)
    assert decoded["result"]["payload_json"] == weird + "\x00tail"


# ----------------------------------------------------------------------
# In-process dispatcher
# ----------------------------------------------------------------------
@pytest.fixture
def service():
    with config_overlay(precompute_debounce_s=0.0):
        manager = SessionManager()
        yield ShardService(manager, shard_index=1, n_shards=2)
        manager.shutdown()


def call(service, method, **params):
    return service.handle({"method": method, "params": params})


def test_dispatcher_create_read_close(service):
    created = call(
        service,
        "create",
        dataset="synthetic-wide",
        rows=100,
        config={"top_k": 3},
    )
    assert created["ok"], created
    sid = created["result"]["session"]
    assert call(service, "list")["result"]["sessions"] == [sid]
    assert call(service, "info", session=sid)["result"]["rows"] == 100

    read = call(service, "recommendations", session=sid)
    assert read["ok"]
    payload = json.loads(read["result"]["payload_json"])  # passthrough
    assert payload["actions"]

    assert call(service, "close", session=sid)["ok"]
    assert call(service, "list")["result"]["sessions"] == []


def test_dispatcher_error_mapping(service):
    assert call(service, "nope")["error"]["kind"] == "bad_request"
    assert call(service, "info", session="ghost")["error"]["kind"] == "not_found"
    both = call(service, "create", dataset="hpi", csv="a,b\n1,2")
    assert both["error"] == {
        "kind": "api",
        "status": 400,
        "message": "provide exactly one of 'dataset' or 'csv'",
    }
    unknown = call(service, "create", dataset="no-such-set")
    assert unknown["error"]["kind"] == "api"
    assert unknown["error"]["status"] == 404

    sid = call(service, "create", dataset="synthetic-wide", rows=80)[
        "result"
    ]["session"]
    bad_mutate = call(service, "mutate", session=sid, column=7)
    assert bad_mutate["error"]["status"] == 400
    bad_action = call(
        service, "recommendations", session=sid, action="NoSuchAction"
    )
    assert bad_action["error"] == {
        "kind": "api",
        "status": 404,
        "message": "no such action: 'NoSuchAction'",
    }


def test_dispatcher_healthz_and_ping(service):
    health = call(service, "healthz")["result"]
    assert health["status"] == "ok"
    assert health["shard"] == 1
    assert "precompute" in health and "store" in health
    ping = call(service, "ping")["result"]
    assert ping["shard"] == 1 and ping["n_shards"] == 2


# ----------------------------------------------------------------------
# Real worker processes
# ----------------------------------------------------------------------
def strip_freshness(response):
    return json.dumps(
        {k: v for k, v in response.items() if k != "freshness"},
        sort_keys=True,
    )


@pytest.mark.slow
def test_supervisor_routes_and_aggregates(tmp_path):
    base = config.snapshot()
    config.restore({**base, "precompute_debounce_s": 0.0})
    try:
        with Supervisor(n_workers=2, snapshot_dir=str(tmp_path)) as sup:
            infos = [
                sup.create_session(
                    {
                        "dataset": "synthetic-wide",
                        "rows": 100,
                        "config": {"top_k": 3},
                    }
                )
                for _ in range(4)
            ]
            ids = sorted(info["session"] for info in infos)
            assert sup.session_ids() == ids
            for sid in ids:
                assert sup.info(sid)["rows"] == 100
            assert sup.wait_idle(30)
            health = sup.healthz()
            assert health["status"] == "ok"
            assert health["shards"] == 2
            assert health["sessions"] == 4
            assert len(health["workers"]) == 2
            payload = json.loads(sup.recommendations(ids[0]))
            assert payload["actions"]
            sup.close_session(ids[0])
            assert sup.session_ids() == ids[1:]
    finally:
        config.restore(base)


@pytest.mark.slow
def test_supervisor_restart_preserves_routing(tmp_path):
    """The same session lands on the same shard across supervisor restarts
    — a restarted worker restores exactly the sessions the new router
    sends it."""
    base = config.snapshot()
    config.restore({**base, "precompute_debounce_s": 0.0})
    try:
        with Supervisor(n_workers=2, snapshot_dir=str(tmp_path)) as sup:
            info = sup.create_session(
                {
                    "dataset": "synthetic-skewed",
                    "rows": 150,
                    "config": {"top_k": 3},
                }
            )
            sid = info["session"]
            sup.mutate(sid, {"column": "heavy_tail"})
            assert sup.wait_idle(30)
            reference = json.loads(sup.recommendations(sid))
        # Whole tier torn down (flushes snapshots); a fresh supervisor
        # must route the session to the worker that restored it.
        with Supervisor(n_workers=2, snapshot_dir=str(tmp_path)) as sup:
            assert sup.session_ids() == [sid]
            restored = json.loads(sup.recommendations(sid))
            assert restored["freshness"]["origin"] != "foreground"
            assert strip_freshness(restored) == strip_freshness(reference)
    finally:
        config.restore(base)


@pytest.mark.slow
def test_dead_worker_healthz_and_warm_recovery(tmp_path):
    base = config.snapshot()
    config.restore({**base, "precompute_debounce_s": 0.0})
    try:
        with Supervisor(n_workers=2, snapshot_dir=str(tmp_path)) as sup:
            info = sup.create_session(
                {
                    "dataset": "synthetic-skewed",
                    "rows": 150,
                    "config": {"top_k": 3},
                }
            )
            sid = info["session"]
            sup.mutate(sid, {"column": "heavy_tail"})
            assert sup.wait_idle(30)
            reference = json.loads(sup.recommendations(sid))
            victim = shard_for(sid, 2)

            sup.kill_worker(victim)
            health = sup.healthz()  # must answer despite the dead worker
            assert health["status"] == "degraded"
            stanzas = {w.get("shard"): w for w in health["workers"]}
            assert stanzas[victim]["status"] == "worker_unreachable"
            survivor = 1 - victim
            assert stanzas[survivor]["status"] == "ok"
            with pytest.raises(WorkerUnreachable):
                sup.recommendations(sid)

            sup.restart_worker(victim)
            recovered = json.loads(sup.recommendations(sid))
            # Warm: served from the restored snapshot pass, not recomputed.
            assert recovered["freshness"]["origin"] != "foreground"
            assert strip_freshness(recovered) == strip_freshness(reference)
            assert sup.healthz()["status"] == "ok"
    finally:
        config.restore(base)
