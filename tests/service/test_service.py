"""The always-on service: store, sessions, precompute, concurrency.

The acceptance-critical properties from the service design:

- a mutation + idle period makes reads return from the store with **zero
  executor invocations** (the always-on promise);
- concurrent sessions with different config overlays produce
  per-session-correct results, bit-identical to serial computation;
- stale passes are cancelled / discarded when the data version moves;
- the store can never serve a payload recorded at an old data version.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro import LuxDataFrame, config, config_overlay, register_action, remove_action
from repro.core.executor.df_exec import DataFrameExecutor
from repro.core.vislist import VisList
from repro.service import ResultStore, SessionManager
from repro.service.store import MANIFEST


def make_frame(n: int = 2_000, seed: int = 0) -> LuxDataFrame:
    rng = np.random.default_rng(seed)
    return LuxDataFrame(
        {
            "q0": np.round(rng.normal(0, 1, n), 6),
            "q1": np.round(rng.lognormal(1, 0.4, n), 6),
            "d0": rng.choice(["a", "b", "c"], n).tolist(),
        }
    )


@pytest.fixture
def manager():
    config.precompute_debounce_s = 0.0
    m = SessionManager()
    yield m
    m.shutdown()


def serial_payloads(frame: LuxDataFrame, **overrides):
    """What a fresh, single-threaded pass produces for this frame/config."""
    from repro.service.session import serialize_recommendations

    with config_overlay(streaming=False, **overrides):
        return serialize_recommendations(frame.recommendations)


class TestResultStore:
    def test_get_put_versioned(self):
        store = ResultStore()
        store.put("s", (1, 0), "A", {"count": 1})
        assert store.get("s", (1, 0), "A")["payload"] == {"count": 1}
        assert store.get("s", (2, 0), "A") is None
        assert store.get("other", (1, 0), "A") is None

    def test_pass_roundtrip_and_manifest_gap(self):
        store = ResultStore()
        store.put_pass("s", (1, 0), {"A": {"count": 1}, "B": {"count": 2}})
        records = store.get_pass("s", (1, 0))
        assert set(records) == {"A", "B"}
        # Simulate eviction of one member: the pass read reports a gap.
        store._entries.pop(("s", (1, 0), "A"))
        assert store.get_pass("s", (1, 0)) is None

    def test_byte_budget_evicts_lru(self):
        store = ResultStore(budget_bytes=400)
        store.put("s", (1, 0), "A", {"blob": "x" * 150})
        store.put("s", (1, 0), "B", {"blob": "y" * 150})
        store.put("s", (1, 0), "C", {"blob": "z" * 150})  # evicts A
        assert store.get("s", (1, 0), "A") is None
        assert store.get("s", (1, 0), "C") is not None
        assert store.stats()["bytes"] <= 400
        assert store.stats()["evictions"] >= 1

    def test_oversized_entry_rejected(self):
        store = ResultStore(budget_bytes=100)
        assert store.put("s", (1, 0), "A", {"blob": "x" * 500}) is False
        assert store.stats()["entries"] == 0

    def test_drop_session(self):
        store = ResultStore()
        store.put_pass("s1", (1, 0), {"A": {}})
        store.put_pass("s2", (1, 0), {"A": {}})
        assert store.drop_session("s1") == 2  # entry + manifest
        assert store.get_pass("s1", (1, 0)) is None
        assert store.get_pass("s2", (1, 0)) is not None


class TestSession:
    def test_store_never_serves_old_version(self, manager):
        config.precompute = False  # manual control
        session = manager.create(make_frame())
        v0 = session.version
        manager.store.put_pass(session.id, v0, {"A": {"count": 1}})
        assert session.recommendations(compute=False) is not None
        session.frame["derived"] = session.frame["q0"]
        # Old entry still in the store but unreachable at the new version.
        assert manager.store.get(session.id, v0, MANIFEST) is not None
        assert session.recommendations(compute=False) is None

    def test_intent_change_invalidates_reads(self, manager):
        config.precompute = False
        session = manager.create(make_frame())
        session.recommendations()  # foreground back-fill
        assert session.recommendations(compute=False) is not None
        session.set_intent(["q0"])
        assert session.recommendations(compute=False) is None

    def test_foreground_backfills_store(self, manager):
        config.precompute = False
        session = manager.create(make_frame())
        first = session.recommendations()
        assert first["freshness"]["origin"] == "foreground"
        again = session.recommendations(compute=False)
        assert again is not None
        assert again["actions"] == first["actions"]

    def test_single_action_read(self, manager):
        config.precompute = False
        session = manager.create(make_frame())
        session.recommendations()
        one = session.recommendations(action="Correlation")
        assert list(one["actions"]) == ["Correlation"]

    def test_unknown_action_raises_not_full_pass(self, manager):
        config.precompute = False
        session = manager.create(make_frame())
        with pytest.raises(KeyError, match="Bogus"):
            session.recommendations(action="Bogus")
        # With a completed pass stored, the rejection is manifest-based:
        # no foreground recomputation happens per bad request.
        session.recommendations()
        memoized = session.frame._recs_cache
        with pytest.raises(KeyError, match="Bogus"):
            session.recommendations(action="Bogus")
        assert session.frame._recs_cache is memoized

    def test_overrides_validated(self, manager):
        with pytest.raises(ValueError, match="unknown config field"):
            manager.create(make_frame(), overrides={"nope": 1})

    def test_plain_frame_wrapped_into_lux(self, manager):
        from repro.dataframe import DataFrame

        config.precompute = False
        plain = DataFrame({"x": [1.0, 2.0, 3.0], "g": ["a", "b", "a"]})
        session = manager.create(plain)
        assert isinstance(session.frame, LuxDataFrame)
        assert session.frame.columns == ["x", "g"]
        assert session.recommendations()["actions"]

    def test_response_json_serializable(self, manager):
        config.precompute = False
        session = manager.create(make_frame())
        json.dumps(session.recommendations())

    def test_manager_registry(self, manager):
        config.precompute = False
        session = manager.create(make_frame())
        assert manager.get(session.id) is session
        assert session.id in manager.ids()
        assert manager.close(session.id) is True
        assert manager.close(session.id) is False
        with pytest.raises(KeyError):
            manager.get(session.id)


class TestAlwaysOn:
    def test_precomputed_read_runs_zero_executor_work(self, manager, monkeypatch):
        calls = {"n": 0}
        real_execute = DataFrameExecutor.execute
        real_many = DataFrameExecutor.execute_many

        def counting_execute(self, spec, frame):
            calls["n"] += 1
            return real_execute(self, spec, frame)

        def counting_many(self, specs, frame):
            calls["n"] += 1
            return real_many(self, specs, frame)

        monkeypatch.setattr(DataFrameExecutor, "execute", counting_execute)
        monkeypatch.setattr(DataFrameExecutor, "execute_many", counting_many)

        session = manager.create(make_frame())
        session.frame["derived"] = session.frame["q0"] * 2
        assert manager.engine.wait_idle(30)
        calls["n"] = 0
        response = session.recommendations()
        assert calls["n"] == 0, "store hit must not touch the executor"
        # "mixed" when the initial pass landed before the mutation (the
        # redo then carries the unaffected actions forward).
        assert response["freshness"]["origin"] in ("precompute", "mixed")
        # In-process prints are free too: the pass refreshed the frame's
        # memoized recommendation cache.
        assert session.frame._recs_fresh

    def test_foreground_fallback_when_precompute_off(self, manager):
        config.precompute = False
        session = manager.create(make_frame())
        session.frame["derived"] = session.frame["q0"] * 2
        response = session.recommendations()
        assert response["freshness"]["origin"] == "foreground"

    @pytest.mark.slow
    def test_concurrent_sessions_bit_identical_to_serial(self, manager):
        sessions = {
            k: manager.create(make_frame(seed=7), overrides={"top_k": k})
            for k in (3, 7)
        }

        def mutate(session):
            session.frame["derived"] = session.frame["q0"] * 2
            session.frame["flag"] = (session.frame["q1"] > 2).astype("int64")

        threads = [
            threading.Thread(target=mutate, args=(s,))
            for s in sessions.values()
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert manager.engine.wait_idle(60), manager.engine.stats()

        for k, session in sessions.items():
            response = session.recommendations()
            assert response["freshness"]["origin"] != "foreground"
            reference = make_frame(seed=7)
            reference["derived"] = reference["q0"] * 2
            reference["flag"] = (reference["q1"] > 2).astype("int64")
            expected = serial_payloads(reference, top_k=k)
            assert response["actions"] == expected, (
                f"session with top_k={k} diverged from serial computation"
            )

    def test_no_cross_session_result_bleed(self, manager):
        a = manager.create(make_frame(seed=1), overrides={"top_k": 2})
        b = manager.create(make_frame(seed=2), overrides={"top_k": 8})
        a.frame["only_in_a"] = a.frame["q0"]
        b.frame["only_in_b"] = b.frame["q1"]
        assert manager.engine.wait_idle(60)
        ra = a.recommendations()
        rb = b.recommendations()
        assert ra["session"] == a.id and rb["session"] == b.id
        flat_a = json.dumps(ra)
        flat_b = json.dumps(rb)
        assert "only_in_a" in flat_a and "only_in_a" not in flat_b
        assert "only_in_b" in flat_b and "only_in_b" not in flat_a
        for payload in ra["actions"].values():
            assert payload["count"] <= 2
        for payload in rb["actions"].values():
            assert payload["count"] <= 8
        # Overlay-shaped passes must not masquerade as the frames' plain
        # memoized recommendations: a direct read outside the service
        # recomputes under global config (top_k=15), not the overlay's 2.
        assert a.frame._recs_version != a.version or a.frame._recs_cache is None
        direct = a.frame.recommendations
        assert any(len(direct[name]) > 2 for name in direct.keys())


@pytest.mark.slow
class TestStaleCancellation:
    def test_stale_pass_never_stored_and_redone(self, manager):
        started = threading.Event()
        gate = threading.Event()

        def blocking_action(ldf):
            started.set()
            gate.wait(15)
            return VisList(visualizations=[])

        register_action(
            "Blocker",
            blocking_action,
            condition=lambda ldf: "blockme" in ldf.columns,
        )
        try:
            frame = make_frame()
            frame["blockme"] = frame["q0"]
            session = manager.create(frame)  # immediate pass, will block
            assert started.wait(30)
            v0 = session.version
            # Mutate mid-pass: the running pass is now stale.
            session.frame["derived"] = session.frame["q0"] * 3
            assert session.version != v0
            gate.set()
            assert manager.engine.wait_idle(60), manager.engine.stats()
            # Nothing was ever published for the superseded version...
            assert manager.store.get(session.id, v0, MANIFEST) is None
            # ...and the redo at the new version completed.
            response = session.recommendations(compute=False)
            assert response is not None
            assert response["data_version"] == list(session.version)
            stats = manager.engine.stats()
            assert stats["cancelled"] + stats["stale"] >= 1
        finally:
            gate.set()
            remove_action("Blocker")

    def test_inflight_dedup_same_version(self, manager):
        config.precompute = False  # manual scheduling only
        session = manager.create(make_frame())
        config.precompute = True
        started = threading.Event()
        gate = threading.Event()

        def blocking_action(ldf):
            started.set()
            gate.wait(15)
            return VisList(visualizations=[])

        register_action(
            "Blocker",
            blocking_action,
            condition=lambda ldf: "q0" in ldf.columns,
        )
        try:
            manager.engine.schedule(session, immediate=True)
            assert started.wait(30)
            before = manager.engine.stats()["scheduled"]
            manager.engine.schedule(session, immediate=True)  # same version
            assert manager.engine.stats()["scheduled"] == before
        finally:
            gate.set()
            remove_action("Blocker")
            assert manager.engine.wait_idle(60)
