"""Observability surface: /metrics, /healthz summaries, /sessions/{id}/trace.

Fast tests cover the frame codec's trace envelope passthrough (both the
plain and NUL-hoisted paths).  The ``slow`` tests boot real servers: the
single-process tier scraped with an inline ten-line parser, and the
2-worker sharded tier where one request must yield stitched spans sharing
a single trace id and the supervisor's merged snapshot must equal the
bucket-wise sum of the per-worker snapshots.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro import config
from repro.core import telemetry
from repro.service import Supervisor, make_server
from repro.service import metrics as service_metrics
from repro.service.shard import decode_frame, encode_frame

CSV = "a,b,c\n" + "\n".join(f"{i % 5},{i * 2.5},g{i % 3}" for i in range(200))

TOKEN = "metrics-test-token"


# ----------------------------------------------------------------------
# Trace envelope across the frame codec (no servers)
# ----------------------------------------------------------------------
class TestTraceEnvelope:
    def test_trace_survives_plain_frames(self):
        response = {
            "id": 7,
            "ok": True,
            "trace": "aabb0011ccdd2233",
            "result": {"sessions": []},
        }
        assert decode_frame(encode_frame(response)) == response

    def test_trace_survives_payload_hoisting(self):
        payload = json.dumps({"actions": list(range(50))})
        response = {
            "id": 8,
            "ok": True,
            "trace": "aabb0011ccdd2233",
            "result": {"payload_json": payload},
        }
        encoded = encode_frame(response)
        # The payload must be hoisted (raw bytes after NUL), not embedded.
        assert encoded.split(b"\x00", 1)[1] == payload.encode("utf-8")
        decoded = decode_frame(encoded)
        assert decoded["trace"] == "aabb0011ccdd2233"
        assert decoded["result"]["payload_json"] == payload

    def test_request_trace_context_is_a_plain_dict(self):
        with telemetry.span("rpc.request") as s:
            ctx = telemetry.current_trace()
        assert ctx == {"id": s.trace_id, "span": s.span_id, "sampled": True}
        # JSON round-trip (what the RPC envelope does to it).
        assert json.loads(json.dumps(ctx)) == ctx


# ----------------------------------------------------------------------
# Single-process HTTP surface
# ----------------------------------------------------------------------
def parse_metrics(text: str) -> dict:
    """Tiny independent exposition parser: {name: {label_str: value}}."""
    out: dict = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        head, value = line.rsplit(" ", 1)
        name, _, labels = head.partition("{")
        out.setdefault(name, {})[labels.rstrip("}")] = float(value)
    return out


def call(base, method, path, body=None, token=None):
    data = json.dumps(body).encode() if body is not None else None
    headers = {"Content-Type": "application/json"}
    if token is not None:
        headers["Authorization"] = f"Bearer {token}"
    request = urllib.request.Request(
        base + path, data=data, method=method, headers=headers
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, response.read().decode(), dict(response.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode(), dict(exc.headers)


@pytest.fixture
def server():
    config.precompute_debounce_s = 0.0
    telemetry.reset()
    srv = make_server().serve_background()
    yield srv
    srv.manager.shutdown()
    srv.stop()
    telemetry.reset()


@pytest.mark.slow
class TestMetricsEndpoint:
    def test_scrape_parses_and_counts_requests(self, server):
        base = server.address
        status, body, _ = call(base, "POST", "/sessions", {"csv": CSV})
        assert status == 201
        sid = json.loads(body)["session"]
        for _ in range(3):
            status, _, _ = call(
                base, "GET", f"/sessions/{sid}/recommendations"
            )
            assert status == 200

        status, text, headers = call(base, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        parsed = parse_metrics(text)

        reads = parsed["lux_http_requests_total"][
            'route="recommendations",method="GET",status="200"'
        ]
        assert reads == 3.0
        # Histogram invariants: cumulative buckets are non-decreasing and
        # +Inf equals the _count series.
        buckets = {
            labels: value
            for labels, value in parsed["lux_http_request_seconds_bucket"].items()
            if 'route="recommendations"' in labels
        }
        finite = sorted(
            (float(labels.split('le="')[1].rstrip('"')), value)
            for labels, value in buckets.items()
            if 'le="+Inf"' not in labels
        )
        assert [v for _, v in finite] == sorted(v for _, v in finite)
        inf = next(v for k, v in buckets.items() if 'le="+Inf"' in k)
        assert inf == parsed["lux_http_request_seconds_count"][
            'route="recommendations"'
        ]
        assert inf >= 3.0
        # Live service gauges are present.
        assert "lux_sessions" in parsed and "lux_store_bytes" in parsed

        call(base, "DELETE", f"/sessions/{sid}")

    def test_metrics_cli_accepts_a_real_scrape(self, server, tmp_path):
        _, text, _ = call(server.address, "GET", "/metrics")
        snapshot = tmp_path / "snap.txt"
        snapshot.write_text(text)
        assert service_metrics.main([str(snapshot)]) == 0
        bad = tmp_path / "bad.txt"
        bad.write_text("lux_broken{oops\n")
        assert service_metrics.main([str(bad)]) == 1
        empty = tmp_path / "empty.txt"
        empty.write_text("# HELP nothing here\n")
        assert service_metrics.main([str(empty)]) == 1

    def test_healthz_reports_latency_summaries(self, server):
        base = server.address
        status, body, _ = call(base, "POST", "/sessions", {"csv": CSV})
        sid = json.loads(body)["session"]
        call(base, "GET", f"/sessions/{sid}/recommendations")
        _, health_text, _ = call(base, "GET", "/healthz")
        telemetry_section = json.loads(health_text)["telemetry"]
        assert "http" in telemetry_section
        route_summary = next(iter(telemetry_section["http"].values()))
        assert route_summary["count"] >= 1
        assert route_summary["p50_ms"] >= 0.0
        call(base, "DELETE", f"/sessions/{sid}")

    def test_trace_endpoint_returns_spans_and_404s(self, server):
        base = server.address
        status, body, _ = call(base, "POST", "/sessions", {"csv": CSV})
        sid = json.loads(body)["session"]
        call(base, "GET", f"/sessions/{sid}/recommendations")
        status, trace_text, _ = call(base, "GET", f"/sessions/{sid}/trace")
        assert status == 200
        spans = json.loads(trace_text)["spans"]
        assert spans and all(s["attrs"]["session"] == sid for s in spans)
        assert {"trace_id", "span_id", "name", "duration_ms"} <= set(spans[0])
        status, _, _ = call(base, "GET", "/sessions/ghost/trace")
        assert status == 404
        status, trace_text, _ = call(
            base, "GET", f"/sessions/{sid}/trace?limit=1"
        )
        assert len(json.loads(trace_text)["spans"]) == 1
        call(base, "DELETE", f"/sessions/{sid}")


@pytest.mark.slow
class TestAuthPosture:
    def test_metrics_is_public_but_trace_is_authenticated(self):
        config.precompute_debounce_s = 0.0
        srv = make_server(auth_token=TOKEN).serve_background()
        try:
            base = srv.address
            status, _, _ = call(base, "GET", "/metrics")
            assert status == 200  # public, like /healthz
            status, body, _ = call(
                base, "POST", "/sessions", {"csv": CSV}, token=TOKEN
            )
            sid = json.loads(body)["session"]
            status, _, _ = call(base, "GET", f"/sessions/{sid}/trace")
            assert status == 401
            status, _, _ = call(
                base, "GET", f"/sessions/{sid}/trace", token=TOKEN
            )
            assert status == 200
            call(base, "DELETE", f"/sessions/{sid}", token=TOKEN)
        finally:
            srv.manager.shutdown()
            srv.stop()


# ----------------------------------------------------------------------
# Sharded tier: stitched traces + exact cross-process merge
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestShardedObservability:
    def test_stitched_spans_and_exact_merge(self, tmp_path):
        config.precompute_debounce_s = 0.0
        telemetry.reset()
        supervisor = Supervisor(n_workers=2)
        srv = make_server(supervisor=supervisor).serve_background()
        try:
            base = srv.address
            status, body, _ = call(base, "POST", "/sessions", {"csv": CSV})
            assert status == 201
            sid = json.loads(body)["session"]
            status, _, read_headers = call(
                base, "GET", f"/sessions/{sid}/recommendations"
            )
            assert status == 200

            # One read request -> spans on BOTH sides of the RPC boundary
            # sharing the single trace id the router minted (and returned
            # to the client as X-Request-Id).
            trace_id = read_headers["X-Request-Id"]
            status, trace_text, _ = call(
                base, "GET", f"/sessions/{sid}/trace"
            )
            assert status == 200
            spans = json.loads(trace_text)["spans"]
            stitched = {
                s["name"] for s in spans if s["trace_id"] == trace_id
            }
            assert {
                "http.request",   # router-side root
                "rpc.request",    # router-side client span
                "rpc.handle",     # worker-side server span
                "session.read",   # worker-side work
            } <= stitched, stitched

            # Merged /metrics equals the bucket-wise sum of the worker
            # snapshots for a histogram the probes themselves don't touch
            # (each metrics RPC mutates rpc/http series between probes).
            assert supervisor.wait_idle(120)
            worker_snaps = [
                supervisor._handles()[shard].request("metrics", timeout=30)[
                    "snapshot"
                ]
                for shard in range(2)
            ]
            manual = service_metrics.merge_snapshots(worker_snaps)
            merged = supervisor.metrics()
            name = "lux_precompute_pass_seconds"
            assert manual[name] == merged[name]
            assert merged["lux_worker_up"]["values"] == {"0": 1.0, "1": 1.0}

            status, text, _ = call(base, "GET", "/metrics")
            assert status == 200
            rendered = service_metrics.parse_exposition(text)
            assert any(n == "lux_rpc_handle_seconds_count" for n, _, _ in rendered)
            call(base, "DELETE", f"/sessions/{sid}")
        finally:
            srv.stop()
            supervisor.stop()
            telemetry.reset()
