"""Incremental recommendation recomputation: partition, carry, identity.

The acceptance-critical properties of the column-level delta path:

- a single-column mutation reruns only the actions whose input footprint
  intersects the delta; everything else is carried forward with
  provenance ``carried`` and the response is bit-identical to a cold
  foreground pass of the same version;
- intent-only changes rerun only intent-reading actions and never mark
  data dirty;
- every escape hatch (row-set changes, evicted previous passes, the
  ``incremental_precompute`` ablation knob) degrades to a full pass,
  never to a wrong one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import LuxDataFrame, config
from repro.service import ResultStore, SessionManager
from repro.service.store import MANIFEST


def make_frame(n: int = 2_000, seed: int = 0) -> LuxDataFrame:
    rng = np.random.default_rng(seed)
    return LuxDataFrame(
        {
            "q0": np.round(rng.normal(0, 1, n), 6),
            "q1": np.round(rng.lognormal(1, 0.4, n), 6),
            "d0": rng.choice(["a", "b", "c"], n).tolist(),
            "d1": rng.choice(["u", "v"], n).tolist(),
        }
    )


@pytest.fixture
def manager():
    config.precompute_debounce_s = 0.0
    m = SessionManager()
    yield m
    m.shutdown()


def settled_session(manager, frame=None, **kwargs):
    """A session whose initial full pass has already landed."""
    session = manager.create(frame if frame is not None else make_frame(), **kwargs)
    assert manager.engine.wait_idle(60), manager.engine.stats()
    return session


def origins_of(response):
    return response["freshness"]["actions"]


class TestIncrementalPartition:
    def test_single_column_mutation_reruns_only_affected(self, manager):
        session = settled_session(manager)
        before = manager.engine.stats()
        session.frame["d0"] = session.frame["d0"].to_list()[::-1]
        assert manager.engine.wait_idle(60), manager.engine.stats()
        response = session.recommendations(compute=False)
        assert response is not None
        origins = origins_of(response)
        # d0 is nominal: only Occurrence reads it — and within Occurrence
        # only the d0 candidate reruns (the d1 vis is carried), so the
        # action lands with the candidate-level "mixed" origin.
        assert origins["Occurrence"] == "mixed"
        assert origins["Correlation"] == "carried"
        assert origins["Distribution"] == "carried"
        assert response["freshness"]["origin"] == "mixed"
        stats = manager.engine.stats()
        assert stats["actions_rerun"] - before["actions_rerun"] == 1
        assert stats["actions_carried"] - before["actions_carried"] == 2
        assert stats["candidates_rerun"] - before["candidates_rerun"] == 1
        assert stats["candidates_carried"] - before["candidates_carried"] == 1
        assert stats["incremental_passes"] >= 1

    def test_carried_response_identical_to_cold_pass(self, manager):
        session = settled_session(manager)
        session.frame["d0"] = session.frame["d0"].to_list()[::-1]
        assert manager.engine.wait_idle(60)
        incremental = session.recommendations(compute=False)
        assert incremental is not None
        # Drop everything reusable and force a cold foreground pass.
        manager.store.drop_session(session.id)
        session.frame.expire_recommendations()
        cold = session.recommendations()
        assert cold["freshness"]["origin"] == "foreground"
        assert cold["actions"] == incremental["actions"]

    def test_measure_mutation_reruns_measure_actions(self, manager):
        session = settled_session(manager)
        session.frame["q0"] = session.frame["q0"] * 2
        assert manager.engine.wait_idle(60)
        origins = origins_of(session.recommendations(compute=False))
        # Correlation's only pair (q0, q1) touches q0: fully recomputed.
        # Distribution reruns q0 but carries the q1 vis: mixed.
        assert origins["Correlation"] == "precompute"
        assert origins["Distribution"] == "mixed"
        assert origins["Occurrence"] == "carried"

    def test_intent_only_change_carries_data_actions(self, manager):
        session = settled_session(manager)
        data_version = session.frame._data_version
        session.set_intent(["q0"])
        assert session.frame._data_version == data_version  # data not dirty
        assert manager.engine.wait_idle(60)
        origins = origins_of(session.recommendations(compute=False))
        assert origins["Correlation"] == "carried"
        assert origins["Occurrence"] == "carried"
        assert origins["Distribution"] == "carried"
        # Intent-reading actions became applicable and were computed.
        assert origins["Current Vis"] == "precompute"
        assert origins["Enhance"] == "precompute"
        assert origins["Filter"] == "precompute"

    def test_burst_of_mutations_unions_deltas(self, manager):
        session = settled_session(manager)
        config.precompute = False  # accumulate without racing passes
        session.frame["q0"] = session.frame["q0"] * 2
        session.frame["d0"] = session.frame["d0"].to_list()[::-1]
        config.precompute = True
        manager.engine.schedule(session, immediate=True)
        assert manager.engine.wait_idle(60)
        origins = origins_of(session.recommendations(compute=False))
        # The union delta covers q0 and d0, so every action reruns —
        # Correlation wholesale (its only pair touches q0), Distribution
        # and Occurrence at candidate level (q1 resp. d1 vis carried).
        assert origins["Correlation"] == "precompute"
        assert origins["Distribution"] == "mixed"
        assert origins["Occurrence"] == "mixed"

    def test_memoized_recommendations_merged_on_incremental_pass(self, manager):
        session = settled_session(manager)
        session.frame["d0"] = session.frame["d0"].to_list()[::-1]
        assert manager.engine.wait_idle(60)
        # The frame's memoized set was refreshed by merging carried
        # VisLists: an in-process read does no recomputation.
        assert session.frame._recs_fresh
        assert session.frame._recs_version == session.version
        recs = session.frame.recommendations
        assert set(recs.keys()) == {"Correlation", "Distribution", "Occurrence"}


class TestIncrementalFallbacks:
    def test_ablation_knob_reruns_everything(self, manager):
        config.incremental_precompute = False
        session = settled_session(manager)
        session.frame["d0"] = session.frame["d0"].to_list()[::-1]
        assert manager.engine.wait_idle(60)
        origins = origins_of(session.recommendations(compute=False))
        assert set(origins.values()) == {"precompute"}
        assert manager.engine.stats()["actions_carried"] == 0

    def test_knob_flip_off_then_on_stays_correct(self, manager):
        """Deltas observed while the knob is off are consumed, not leaked.

        A mutation landing during an ablation window gets a full pass;
        flipping the knob back on must scope the NEXT mutation to its own
        delta only — and the merged response stays bit-identical to a
        cold pass (a stale leftover delta would either over-rerun or,
        worse, carry results the off-window mutation invalidated).
        """
        session = settled_session(manager)
        config.incremental_precompute = False
        session.frame["d0"] = session.frame["d0"].to_list()[::-1]
        assert manager.engine.wait_idle(60)
        response = session.recommendations(compute=False)
        assert set(origins_of(response).values()) == {"precompute"}

        config.incremental_precompute = True
        before = manager.engine.stats()
        rotated = session.frame["d1"].to_list()
        session.frame["d1"] = rotated[1:] + rotated[:1]
        assert manager.engine.wait_idle(60)
        response = session.recommendations(compute=False)
        origins = origins_of(response)
        # Only the d1 delta is in play: the quantitative actions carry.
        # Occurrence reruns; whether its d0 vis carries at candidate
        # granularity depends on what the (non-recording) off-window pass
        # left behind, so either is sound — wrong answers are not.
        assert origins["Correlation"] == "carried"
        assert origins["Distribution"] == "carried"
        assert origins["Occurrence"] in ("mixed", "precompute")
        stats = manager.engine.stats()
        assert stats["actions_carried"] - before["actions_carried"] == 2
        assert stats["actions_rerun"] - before["actions_rerun"] == 1
        # Bit-identical to a cold foreground pass of the same version.
        manager.store.drop_session(session.id)
        session.frame.expire_recommendations()
        cold = session.recommendations()
        assert cold["freshness"]["origin"] == "foreground"
        assert cold["actions"] == response["actions"]

    def test_row_set_change_forces_full_pass(self, manager):
        frame = make_frame()
        frame["q0"] = [None] + frame["q0"].to_list()[1:]
        session = settled_session(manager, frame)
        session.frame.dropna(inplace=True)
        assert manager.engine.wait_idle(60)
        origins = origins_of(session.recommendations(compute=False))
        assert set(origins.values()) == {"precompute"}

    def test_evicted_previous_pass_forces_rerun(self, manager):
        session = settled_session(manager)
        before = manager.engine.stats()
        # Lose the previous pass entirely (harsher than LRU pressure).
        manager.store.clear()
        session.frame["d0"] = session.frame["d0"].to_list()[::-1]
        assert manager.engine.wait_idle(60)
        response = session.recommendations(compute=False)
        assert response is not None
        # No action-level carry is possible — every payload is gone — so
        # all three actions rerun.  The frame's live memoized set still
        # holds the previous displayed Vis, so untouched candidates inside
        # each rerun action are still carried at vis granularity.
        stats = manager.engine.stats()
        assert stats["actions_carried"] - before["actions_carried"] == 0
        assert stats["actions_rerun"] - before["actions_rerun"] == 3
        assert set(origins_of(response).values()) <= {"precompute", "mixed"}

    def test_unwatched_session_has_no_state_leak(self, manager):
        session = settled_session(manager)
        assert session.id in manager.engine._states
        manager.close(session.id)
        assert session.id not in manager.engine._states

    def test_mutation_while_precompute_off_still_recorded(self, manager):
        session = settled_session(manager)
        config.precompute = False
        session.frame["q0"] = session.frame["q0"] * 2
        config.precompute = True
        manager.engine.schedule(session, immediate=True)
        assert manager.engine.wait_idle(60)
        origins = origins_of(session.recommendations(compute=False))
        # The q0 delta observed while the switch was off still partitions
        # the pass: Occurrence did not read q0 and is carried.
        assert origins["Occurrence"] == "carried"
        assert origins["Correlation"] == "precompute"


class TestCarryForwardStore:
    def test_carry_preserves_payload_and_timestamp(self):
        store = ResultStore()
        store.put("s", (1, 0), "A", {"count": 3}, origin="precompute")
        first = store.get("s", (1, 0), "A")
        assert store.carry("s", (1, 0), (2, 0), "A") is True
        carried = store.get("s", (2, 0), "A")
        assert carried["payload"] == {"count": 3}
        assert carried["origin"] == "carried"
        assert carried["computed_at"] == first["computed_at"]
        assert store.stats()["carried"] == 1

    def test_carry_missing_source_fails(self):
        store = ResultStore()
        assert store.carry("s", (1, 0), (2, 0), "A") is False

    def test_manifest_purged_when_member_evicted(self):
        """Regression: LRU-evicting a pass member must purge its manifest.

        Before the fix, the manifest row survived its members, dangling
        forever: unreachable as a pass (``get_pass`` reported the gap) yet
        resident in the LRU, consuming budget and answering
        action-existence probes for payloads that no longer existed.
        """
        store = ResultStore(budget_bytes=600)
        store.put_pass("s", (1, 0), {"A": {"blob": "x" * 120}, "B": {"blob": "y" * 120}})
        assert store.get("s", (1, 0), MANIFEST) is not None
        # Inserting at a newer version evicts the oldest member of v1...
        store.put("s", (2, 0), "A", {"blob": "z" * 200})
        store.put("s", (2, 0), "B", {"blob": "w" * 200})
        assert store.get("s", (1, 0), "A") is None
        # ...and the v1 manifest went with it instead of dangling.
        assert store.get("s", (1, 0), MANIFEST) is None
        stats = store.stats()
        assert stats["bytes"] <= 600

    def test_manifest_not_written_over_evicted_members(self):
        """A pass bigger than the whole budget never publishes a manifest
        naming entries that were already evicted during its own insert."""
        store = ResultStore(budget_bytes=300)
        store.put_pass(
            "s",
            (1, 0),
            {name: {"blob": "x" * 120} for name in ("A", "B", "C")},
        )
        assert store.get("s", (1, 0), MANIFEST) is None
        assert store.get_pass("s", (1, 0)) is None

    def test_incremental_manifest_lists_carried_actions(self):
        store = ResultStore()
        store.put_pass("s", (1, 0), {"A": {"n": 1}, "B": {"n": 2}})
        assert store.carry("s", (1, 0), (2, 0), "B")
        store.put_pass("s", (2, 0), {"A": {"n": 9}}, manifest=["A", "B"])
        records = store.get_pass("s", (2, 0))
        assert records is not None and set(records) == {"A", "B"}
        assert records["A"]["origin"] == "precompute"
        assert records["B"]["origin"] == "carried"
