"""The ``/v1/`` API surface and the typed provenance envelope.

Two contracts are pinned here:

* **Golden wire shapes.**  The v1 ``provenance`` payload and the legacy
  ``freshness`` dict are both rendered from one :class:`Provenance`
  object; these tests freeze both shapes so neither can drift without a
  deliberate edit.  The v1 shape must also be identical whether the
  response is produced in-process or crosses the shard RPC (the
  ``payload_json`` passthrough).

* **Deprecation policy.**  Unprefixed routes keep working byte-for-byte
  but advertise their ``/v1/`` successor via ``Deprecation`` and
  ``Link`` headers (RFC 8594 style); ``/v1/`` routes carry neither.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro import config
from repro.core.config import config_overlay
from repro.service import make_server
from repro.service.provenance import ActionProvenance, Provenance
from repro.service.shard import ShardService
from repro.service.session import SessionManager

CSV = "a,b,c\n" + "\n".join(f"{i % 7},{i * 1.5},g{i % 3}" for i in range(300))


# ----------------------------------------------------------------------
# Envelope unit tests (no server)
# ----------------------------------------------------------------------
class TestProvenanceEnvelope:
    def test_v1_payload_golden_shape(self):
        """The exact /v1/ wire shape.  Do not loosen: clients parse this."""
        prov = Provenance.build(
            version=(3, 2),
            payloads={"Correlation": {}, "Distribution": {}},
            origin="precompute",
            computed_at=1700000000.25,
            origins={"Distribution": "mixed"},
            vis_origins={"Distribution": {"abc123": "carried"}},
        )
        assert prov.to_payload() == {
            "origin": "precompute",
            "computed_at": 1700000000.25,
            "data_version": 3,
            "intent_epoch": 2,
            "actions": {
                "Correlation": {"origin": "precompute", "vis": None},
                "Distribution": {
                    "origin": "mixed",
                    "vis": {"abc123": "carried"},
                },
            },
        }

    def test_legacy_freshness_golden_shape(self):
        """The historical dict: origin / age_s / flat per-action origins.

        Per-vis detail must NOT leak into the legacy shape — old clients
        (and the load harness's identity gates) compare these bytes.
        """
        prov = Provenance(
            origin="foreground",
            computed_at=None,
            data_version=1,
            intent_epoch=0,
            actions={"Enhance": ActionProvenance("foreground", {"k": "carried"})},
        )
        legacy = prov.legacy_freshness()
        assert set(legacy) == {"origin", "age_s", "actions"}
        assert legacy["origin"] == "foreground"
        assert legacy["actions"] == {"Enhance": "foreground"}
        assert isinstance(legacy["age_s"], float)

    def test_round_trips_through_json(self):
        prov = Provenance.build(
            (0, 0), {"A": {}}, "precompute", computed_at=5.0
        )
        assert json.loads(json.dumps(prov.to_payload())) == prov.to_payload()


# ----------------------------------------------------------------------
# HTTP surface (real threaded server — slow, skipped by the smoke job)
# ----------------------------------------------------------------------
@pytest.fixture
def server():
    config.precompute_debounce_s = 0.0
    srv = make_server().serve_background()
    yield srv
    srv.manager.shutdown()
    srv.stop()


def call(server, method: str, path: str, body=None):
    """Like the smoke suite's helper, but also returns response headers."""
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        server.address + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read()), dict(
                response.headers
            )
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


@pytest.mark.slow
class TestV1Surface:
    def test_v1_routes_mirror_legacy_lifecycle(self, server):
        status, health, _ = call(server, "GET", "/v1/healthz")
        assert status == 200 and health["status"] == "ok"

        status, info, _ = call(
            server, "POST", "/v1/sessions", {"csv": CSV, "config": {"top_k": 3}}
        )
        assert status == 201
        sid = info["session"]
        assert server.manager.engine.wait_idle(30)

        status, listing, _ = call(server, "GET", "/v1/sessions")
        assert status == 200 and sid in listing["sessions"]

        status, recs, _ = call(
            server, "GET", f"/v1/sessions/{sid}/recommendations"
        )
        assert status == 200 and recs["actions"]

        status, closed, _ = call(server, "DELETE", f"/v1/sessions/{sid}")
        assert status == 200 and closed["closed"] == sid

    def test_v1_serves_provenance_legacy_serves_freshness(self, server):
        status, info, _ = call(server, "POST", "/sessions", {"csv": CSV})
        assert status == 201
        sid = info["session"]
        assert server.manager.engine.wait_idle(30)

        _, legacy, _ = call(server, "GET", f"/sessions/{sid}/recommendations")
        assert "freshness" in legacy and "provenance" not in legacy
        assert set(legacy["freshness"]) == {"origin", "age_s", "actions"}

        _, v1, _ = call(server, "GET", f"/v1/sessions/{sid}/recommendations")
        assert "provenance" in v1 and "freshness" not in v1
        prov = v1["provenance"]
        assert set(prov) == {
            "origin", "computed_at", "data_version", "intent_epoch", "actions"
        }
        assert prov["origin"] == "precompute"
        assert prov["data_version"] == 0 and prov["intent_epoch"] == 0
        for entry in prov["actions"].values():
            assert set(entry) == {"origin", "vis"}
        # Identical per-action origins on both surfaces; per-vis keys (when
        # present) must match the displayed specs' echoed candidate keys.
        assert legacy["freshness"]["actions"] == {
            name: entry["origin"] for name, entry in prov["actions"].items()
        }
        for name, entry in prov["actions"].items():
            if entry["vis"] is not None:
                spec_keys = {s["key"] for s in v1["actions"][name]["specs"]}
                assert set(entry["vis"]) <= spec_keys
        # Non-freshness content is byte-identical across the two surfaces.
        strip = lambda r: {
            k: v for k, v in r.items() if k not in ("freshness", "provenance")
        }
        assert json.dumps(strip(legacy), sort_keys=True) == json.dumps(
            strip(v1), sort_keys=True
        )

    def test_legacy_routes_emit_deprecation_headers(self, server):
        status, _, headers = call(server, "GET", "/healthz")
        assert status == 200
        assert headers.get("Deprecation") == "true"
        assert headers.get("Link") == '</v1/healthz>; rel="successor-version"'

        status, info, headers = call(server, "POST", "/sessions", {"csv": CSV})
        assert status == 201 and headers.get("Deprecation") == "true"
        sid = info["session"]

        _, _, headers = call(server, "GET", f"/sessions/{sid}/recommendations")
        assert headers.get("Deprecation") == "true"
        assert (
            headers.get("Link")
            == '</v1/sessions/{id}/recommendations>; rel="successor-version"'
        )

    def test_v1_routes_carry_no_deprecation_headers(self, server):
        status, _, headers = call(server, "GET", "/v1/healthz")
        assert status == 200
        assert "Deprecation" not in headers and "Link" not in headers

        status, info, headers = call(
            server, "POST", "/v1/sessions", {"csv": CSV}
        )
        assert status == 201 and "Deprecation" not in headers
        _, _, headers = call(
            server, "GET", f"/v1/sessions/{info['session']}/recommendations"
        )
        assert "Deprecation" not in headers

    def test_unknown_v1_route_is_404(self, server):
        status, err, _ = call(server, "GET", "/v1/nope")
        assert status == 404 and "error" in err


# ----------------------------------------------------------------------
# Shard RPC passthrough
# ----------------------------------------------------------------------
def test_v1_flag_crosses_shard_rpc():
    """The worker serializes the envelope; the supervisor never re-parses.

    Same dispatcher, with and without the flag: the v1 response must
    carry the typed ``provenance`` object and the legacy response the
    ``freshness`` dict — i.e. the wire shape is decided worker-side and
    survives the ``payload_json`` passthrough unchanged.
    """
    with config_overlay(precompute_debounce_s=0.0):
        manager = SessionManager()
        try:
            service = ShardService(manager, shard_index=0, n_shards=1)
            created = service.handle(
                {
                    "method": "create",
                    "params": {"dataset": "synthetic-wide", "rows": 100},
                }
            )
            sid = created["result"]["session"]
            manager.engine.wait_idle(30)

            legacy = service.handle(
                {"method": "recommendations", "params": {"session": sid}}
            )
            payload = json.loads(legacy["result"]["payload_json"])
            assert "freshness" in payload and "provenance" not in payload

            v1 = service.handle(
                {
                    "method": "recommendations",
                    "params": {"session": sid, "v1": True},
                }
            )
            payload = json.loads(v1["result"]["payload_json"])
            assert "provenance" in payload and "freshness" not in payload
            assert set(payload["provenance"]) == {
                "origin", "computed_at", "data_version", "intent_epoch",
                "actions",
            }
        finally:
            manager.shutdown()
