"""Session persistence: snapshot save/restore round trips.

The contract under test (``repro.service.persist``): a restored session
is *bit-identical* to the one that was saved — every column's values,
mask, and dtype; the intent clauses; the history; the version pair — and
its first read serves the snapshotted pass (origin ``precompute`` /
``carried`` / ``mixed``, never ``foreground``) without recomputing.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.config import config_overlay
from repro.data.synthetic import SCENARIOS, make_scenario
from repro.service import SessionManager, SnapshotStore
from repro.service.persist import SNAPSHOT_FILE

#: One real (queryable) column per scenario, used as the intent anchor.
ANCHOR = {
    "wide": "q_int_0",
    "highcard": "amount",
    "skewed": "heavy_tail",
    "datetime": "reading",
    "nullheavy": "dense_anchor",
}


def build_manager(tmp_path, interval_s=0.0):
    snaps = SnapshotStore(str(tmp_path), interval_s=interval_s)
    return SessionManager(snapshots=snaps), snaps


def strip_freshness(response):
    return json.dumps(
        {k: v for k, v in response.items() if k != "freshness"},
        sort_keys=True,
    )


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_round_trip_bit_identical(tmp_path, scenario):
    """Save/load preserves frame, intent, history, version — exactly."""
    with config_overlay(precompute_debounce_s=0.0):
        manager, snaps = build_manager(tmp_path)
        frame = make_scenario(scenario, n_rows=150)
        anchor = ANCHOR[scenario]
        session = manager.create(
            frame, overrides={"top_k": 3}, intent=[anchor]
        )
        session.mutate(anchor)
        assert manager.engine.wait_idle(30)
        reference = session.recommendations()
        assert reference["freshness"]["origin"] != "foreground"
        sid, version = session.id, session.version
        saved_columns = {
            name: session.frame._data[name].copy()
            for name in session.frame.columns
        }
        saved_history = [(e.op, e.time) for e in session.frame.history]
        manager.shutdown()

        restored_manager, _ = build_manager(tmp_path)
        assert restored_manager.restore_sessions() == [sid]
        twin = restored_manager.get(sid)
        assert twin.version == version
        assert twin.overrides == {"top_k": 3}
        assert twin.frame.columns == list(saved_columns)
        for name, column in saved_columns.items():
            assert twin.frame._data[name].equals(column), name
            assert twin.frame._data[name].dtype is column.dtype, name
        assert [(e.op, e.time) for e in twin.frame.history] == saved_history
        assert [c.attribute for c in twin.frame.intent] == [anchor]

        # First read serves the snapshotted pass, not a recomputation...
        response = twin.recommendations()
        assert response["freshness"]["origin"] != "foreground"
        # ...and the payload is exactly what the original produced.
        assert strip_freshness(response) == strip_freshness(reference)
        restored_manager.shutdown()


def test_restored_session_stays_live(tmp_path):
    """A restored session mutates, recomputes, and re-snapshots normally."""
    with config_overlay(precompute_debounce_s=0.0):
        manager, _ = build_manager(tmp_path)
        session = manager.create(
            make_scenario("skewed", n_rows=120), overrides={"top_k": 3}
        )
        session.mutate("heavy_tail")
        assert manager.engine.wait_idle(30)
        sid, version = session.id, session.version
        manager.shutdown()

        restored_manager, _ = build_manager(tmp_path)
        restored_manager.restore_sessions()
        twin = restored_manager.get(sid)
        twin.mutate("heavy_tail")
        assert twin.version[0] == version[0] + 1
        assert restored_manager.engine.wait_idle(30)
        response = twin.recommendations()
        assert response["actions"]
        restored_manager.shutdown()


def test_interval_rate_limit(tmp_path):
    """Back-to-back saves within the interval are skipped (not forced)."""
    with config_overlay(precompute_debounce_s=0.0):
        manager, snaps = build_manager(tmp_path, interval_s=3600.0)
        session = manager.create(make_scenario("wide", n_rows=100))
        assert snaps.save(session) is True
        assert snaps.save(session) is False  # within the hour
        assert snaps.stats()["skipped_interval"] == 1
        assert snaps.save(session, force=True) is True  # shutdown path
        manager.engine.close()


def test_close_drops_snapshot_but_shutdown_keeps_it(tmp_path):
    with config_overlay(precompute_debounce_s=0.0):
        manager, snaps = build_manager(tmp_path)
        keep = manager.create(make_scenario("wide", n_rows=100))
        drop = manager.create(make_scenario("wide", n_rows=100))
        for session in (keep, drop):
            snaps.save(session, force=True)
        manager.close(drop.id)  # explicit close: the session is gone
        assert snaps.ids() == [keep.id]
        manager.shutdown()  # shutdown: sessions must survive restarts
        assert snaps.ids() == [keep.id]


def test_corrupt_snapshot_is_skipped_not_fatal(tmp_path):
    with config_overlay(precompute_debounce_s=0.0):
        manager, snaps = build_manager(tmp_path)
        session = manager.create(make_scenario("wide", n_rows=100))
        snaps.save(session, force=True)
        sid = session.id
        manager.shutdown()

        record = os.path.join(str(tmp_path), sid, SNAPSHOT_FILE)
        with open(record, "w", encoding="utf-8") as fh:
            fh.write("{ not json")
        restored_manager, restored_snaps = build_manager(tmp_path)
        with pytest.warns(Warning):
            assert restored_manager.restore_sessions() == []
        assert restored_snaps.stats()["restore_failed"] == 1
        restored_manager.shutdown()


def test_stray_files_are_not_sessions(tmp_path):
    (tmp_path / "notes.txt").write_text("scratch")
    (tmp_path / "empty-dir").mkdir()
    snaps = SnapshotStore(str(tmp_path))
    assert snaps.ids() == []


def test_restore_filters_by_shard(tmp_path):
    """Each worker restores only the sessions its shard owns."""
    from repro.service import shard_for

    with config_overlay(precompute_debounce_s=0.0):
        manager, snaps = build_manager(tmp_path)
        ids = []
        for _ in range(8):
            session = manager.create(make_scenario("wide", n_rows=80))
            snaps.save(session, force=True)
            ids.append(session.id)
        manager.shutdown()

        n_shards = 2
        seen: list[str] = []
        for shard in range(n_shards):
            worker_manager, _ = build_manager(tmp_path)
            restored = worker_manager.restore_sessions(
                shard=shard, n_shards=n_shards
            )
            assert all(
                shard_for(sid, n_shards) == shard for sid in restored
            )
            seen.extend(restored)
            worker_manager.shutdown()
        assert sorted(seen) == sorted(ids)  # a partition: no loss, no dup


def test_snapshot_files_are_versioned_and_pruned(tmp_path):
    """Superseded frame/results files are pruned after each commit."""
    with config_overlay(precompute_debounce_s=0.0):
        manager, snaps = build_manager(tmp_path)
        session = manager.create(
            make_scenario("skewed", n_rows=120), overrides={"top_k": 3}
        )
        for _ in range(3):
            session.mutate("heavy_tail")
            assert manager.engine.wait_idle(30)
        snaps.save(session, force=True)
        directory = tmp_path / session.id
        frames = [p for p in os.listdir(directory) if p.startswith("frame-")]
        results = [p for p in os.listdir(directory) if p.startswith("results-")]
        assert len(frames) == 1
        assert len(results) <= 1
        assert not [p for p in os.listdir(directory) if p.startswith(".tmp-")]
        manager.shutdown()
