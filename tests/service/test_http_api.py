"""HTTP smoke test: start the server, hit every endpoint."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro import config
from repro.service import make_server

# Each test boots (and tears down) a real threaded HTTP server; the CI
# smoke job skips these and leaves them to the full matrix.
pytestmark = pytest.mark.slow

CSV = "a,b,c\n" + "\n".join(f"{i % 7},{i * 1.5},g{i % 3}" for i in range(300))


TOKEN = "s3cret-token"


@pytest.fixture
def server():
    config.precompute_debounce_s = 0.0
    srv = make_server().serve_background()
    yield srv
    srv.manager.shutdown()
    srv.stop()


@pytest.fixture
def auth_server():
    config.precompute_debounce_s = 0.0
    srv = make_server(auth_token=TOKEN).serve_background()
    yield srv
    srv.manager.shutdown()
    srv.stop()


def call(server, method: str, path: str, body=None, token=None):
    data = json.dumps(body).encode() if body is not None else None
    headers = {"Content-Type": "application/json"}
    if token is not None:
        headers["Authorization"] = f"Bearer {token}"
    request = urllib.request.Request(
        server.address + path, data=data, method=method, headers=headers
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestHTTPApi:
    def test_full_lifecycle(self, server):
        # Create from inline CSV with a per-session overlay.
        status, info = call(
            server, "POST", "/sessions", {"csv": CSV, "config": {"top_k": 3}}
        )
        assert status == 201
        assert info["columns"] == ["a", "b", "c"]
        session_id = info["session"]

        # The always-on pass from creation lands without any further call.
        assert server.manager.engine.wait_idle(30)
        status, recs = call(
            server, "GET", f"/sessions/{session_id}/recommendations"
        )
        assert status == 200
        assert recs["freshness"]["origin"] == "precompute"
        assert recs["actions"]
        for payload in recs["actions"].values():
            assert payload["count"] <= 3
            for spec in payload["specs"]:
                assert spec["vegalite"]["$schema"].startswith("https://vega")

        # Steer with intent; narrowed single-action read.
        status, _ = call(
            server, "POST", f"/sessions/{session_id}/intent", {"intent": ["b"]}
        )
        assert status == 200
        assert server.manager.engine.wait_idle(30)
        status, one = call(
            server,
            "GET",
            f"/sessions/{session_id}/recommendations?action=Enhance",
        )
        assert status == 200
        assert list(one["actions"]) == ["Enhance"]

        # Listing, info, health.
        status, listing = call(server, "GET", "/sessions")
        assert status == 200 and session_id in listing["sessions"]
        status, info = call(server, "GET", f"/sessions/{session_id}")
        assert status == 200 and info["intent"]
        status, health = call(server, "GET", "/healthz")
        assert status == 200 and health["status"] == "ok"
        assert {"pool", "store", "precompute", "computation_cache"} <= set(health)

        # Close; the session and its store entries are gone.
        status, closed = call(server, "DELETE", f"/sessions/{session_id}")
        assert status == 200 and closed["closed"] == session_id
        status, _ = call(server, "GET", f"/sessions/{session_id}")
        assert status == 404

    def test_bundled_dataset_with_row_cap(self, server):
        status, info = call(
            server, "POST", "/sessions", {"dataset": "hpi", "rows": 20}
        )
        assert status == 201
        assert info["rows"] == 20

    def test_error_paths(self, server):
        status, err = call(server, "POST", "/sessions", {})
        assert status == 400 and "error" in err
        status, err = call(server, "POST", "/sessions", {"dataset": "nope"})
        assert status == 404
        status, err = call(
            server, "POST", "/sessions", {"csv": CSV, "config": {"bogus": 1}}
        )
        assert status == 400 and "unknown config field" in err["error"]
        status, err = call(server, "GET", "/sessions/missing/recommendations")
        assert status == 404
        status, err = call(server, "GET", "/nope")
        assert status == 404

    def test_unknown_action_is_404(self, server):
        status, info = call(server, "POST", "/sessions", {"csv": CSV})
        assert status == 201
        assert server.manager.engine.wait_idle(30)
        status, err = call(
            server,
            "GET",
            f"/sessions/{info['session']}/recommendations?action=Bogus",
        )
        assert status == 404 and "Bogus" in err["error"]

    def test_auth_disabled_by_default(self, server):
        # Empty token (the default config) leaves every route open.
        status, _ = call(server, "GET", "/sessions")
        assert status == 200

    def test_auth_required_on_every_route_except_healthz(self, auth_server):
        # /healthz stays open for liveness probes.
        status, health = call(auth_server, "GET", "/healthz")
        assert status == 200 and health["status"] == "ok"
        # Every other route answers 401 without (or with a wrong) token.
        probes = [
            ("GET", "/sessions", None),
            ("POST", "/sessions", {"csv": CSV}),
            ("GET", "/sessions/whatever", None),
            ("DELETE", "/sessions/whatever", None),
            ("POST", "/sessions/whatever/intent", {"intent": ["b"]}),
            ("GET", "/sessions/whatever/recommendations", None),
        ]
        for method, path, body in probes:
            status, err = call(auth_server, method, path, body)
            assert status == 401, (method, path, status)
            assert "bearer token" in err["error"]
            status, _ = call(auth_server, method, path, body, token="wrong")
            assert status == 401, (method, path, status)

    def test_auth_accepts_the_configured_token(self, auth_server):
        status, info = call(
            auth_server, "POST", "/sessions", {"csv": CSV}, token=TOKEN
        )
        assert status == 201
        session_id = info["session"]
        status, listing = call(auth_server, "GET", "/sessions", token=TOKEN)
        assert status == 200 and session_id in listing["sessions"]
        status, closed = call(
            auth_server, "DELETE", f"/sessions/{session_id}", token=TOKEN
        )
        assert status == 200 and closed["closed"] == session_id

    def test_keepalive_survives_error_with_body(self, server):
        """An error response must drain the request body (keep-alive)."""
        import http.client

        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            body = json.dumps({"intent": ["b"]})
            # 404s before the handler ever parses the body...
            connection.request(
                "POST", "/sessions/missing/intent", body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 404
            response.read()
            # ...and the SAME connection must stay usable afterwards —
            # including for a request with its own body (a stale body
            # cache or undrained bytes would desync it).
            connection.request(
                "POST", "/sessions", body=json.dumps({"csv": CSV}),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 201
            created = json.loads(response.read())
            assert created["columns"] == ["a", "b", "c"]
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["status"] == "ok"
        finally:
            connection.close()
