"""Unit tests for Clause, the intent parser, and the validator (§5, §7.1.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Clause, IntentError
from repro.core.intent import parse_clause, parse_intent
from repro.core.metadata import compute_metadata
from repro.core.validator import validate_intent


class TestClause:
    def test_axis(self):
        c = Clause(attribute="Age")
        assert c.is_axis and not c.is_filter

    def test_filter(self):
        c = Clause(attribute="Dept", filter_op="=", value="Sales")
        assert c.is_filter

    def test_union(self):
        c = Clause(attribute=["A", "B"])
        assert c.is_union

    def test_wildcard(self):
        assert Clause(attribute="?").is_wildcard
        assert Clause(attribute="Country", value="?").is_wildcard

    def test_aggregation_normalization(self):
        assert Clause("Age", aggregation="avg").aggregation == "mean"
        assert Clause("Age", aggregation=np.var).aggregation == "var"
        assert Clause("Age").aggregation is None

    def test_aggregation_specified_flag(self):
        assert Clause("Age", aggregation="mean").aggregation_specified
        assert not Clause("Age").aggregation_specified

    def test_bad_aggregation(self):
        with pytest.raises(ValueError):
            Clause("Age", aggregation="frobnicate")

    def test_bad_filter_op(self):
        with pytest.raises(ValueError):
            Clause("Age", filter_op="~=")

    def test_copy_independent(self):
        c = Clause(attribute=["A", "B"])
        d = c.copy()
        d.attribute.append("C")
        assert c.attribute == ["A", "B"]

    def test_equality_and_hash(self):
        assert Clause("Age") == Clause("Age")
        assert Clause("Age") != Clause("Age", aggregation="mean")
        assert len({Clause("Age"), Clause("Age")}) == 1

    def test_alternatives_union(self):
        alts = Clause(attribute=["A", "B"]).alternatives(["A", "B", "C"])
        assert [a.attribute for a in alts] == ["A", "B"]

    def test_alternatives_wildcard(self):
        alts = Clause(attribute="?").alternatives(["A", "B"])
        assert [a.attribute for a in alts] == ["A", "B"]

    def test_repr(self):
        assert "Sales" in repr(Clause("Dept", filter_op="=", value="Sales"))
        assert "aggregation=mean" in repr(Clause("Age", aggregation="mean"))


class TestParser:
    def test_plain_attribute(self):
        c = parse_clause("Age")
        assert c.attribute == "Age" and c.is_axis

    def test_filter_equality(self):
        c = parse_clause("Department=Sales")
        assert c.is_filter and c.filter_op == "=" and c.value == "Sales"

    def test_numeric_filter_value_parsed(self):
        c = parse_clause("price>=100")
        assert c.filter_op == ">=" and c.value == 100

    def test_float_filter_value(self):
        assert parse_clause("rate<0.5").value == 0.5

    def test_not_equal(self):
        assert parse_clause("x!=3").filter_op == "!="

    def test_value_wildcard(self):
        c = parse_clause("Country=?")
        assert c.value == "?"

    def test_value_union(self):
        c = parse_clause("Dept=Sales|Support")
        assert c.value == ["Sales", "Support"]

    def test_attribute_union_string(self):
        c = parse_clause("HourlyRate|DailyRate")
        assert c.attribute == ["HourlyRate", "DailyRate"]

    def test_list_element_is_union(self):
        c = parse_clause(["A", "B"])
        assert c.attribute == ["A", "B"]

    def test_clause_passthrough_copies(self):
        orig = Clause("Age")
        parsed = parse_clause(orig)
        assert parsed == orig and parsed is not orig

    def test_empty_string_raises(self):
        with pytest.raises(ValueError):
            parse_clause("   ")

    def test_bad_type_raises(self):
        with pytest.raises(TypeError):
            parse_clause(42)

    def test_parse_intent_single(self):
        assert len(parse_intent("Age")) == 1

    def test_parse_intent_list(self):
        clauses = parse_intent(["Age", "Dept=Sales"])
        assert clauses[0].is_axis and clauses[1].is_filter

    def test_parse_intent_none(self):
        assert parse_intent(None) == []

    def test_parse_intent_q5_shape(self):
        # Q5: VisList(["EducationField", rates], df)
        clauses = parse_intent(["EducationField", ["HourlyRate", "DailyRate"]])
        assert clauses[1].attribute == ["HourlyRate", "DailyRate"]


class TestValidator:
    @pytest.fixture
    def metadata(self, employees):
        return compute_metadata(employees)

    def test_valid_intent_passes(self, metadata):
        validate_intent(parse_intent(["Age", "Department=Sales"]), metadata)

    def test_unknown_attribute(self, metadata):
        with pytest.raises(IntentError):
            validate_intent(parse_intent(["NotAColumn"]), metadata)

    def test_suggestion_for_typo(self, metadata):
        with pytest.raises(IntentError) as err:
            validate_intent(parse_intent(["Agee"]), metadata)
        assert "Age" in str(err.value)

    def test_unknown_filter_value(self, metadata):
        with pytest.raises(IntentError) as err:
            validate_intent(parse_intent(["Department=Slaes"]), metadata)
        assert "Sales" in str(err.value)

    def test_numeric_filters_unchecked(self, metadata):
        validate_intent(parse_intent(["Age>1000"]), metadata)

    def test_wildcards_pass(self, metadata):
        validate_intent(parse_intent(["?", "Country=?"]), metadata)

    def test_union_attribute_members_checked(self, metadata):
        with pytest.raises(IntentError):
            validate_intent([Clause(attribute=["Age", "Bogus"])], metadata)

    def test_bad_data_type_constraint(self, metadata):
        with pytest.raises(IntentError):
            validate_intent([Clause("?", data_type="numerical")], metadata)

    def test_intent_setter_validates(self, employees):
        with pytest.raises(IntentError):
            employees.intent = ["Bogus"]
        employees.intent = ["Age"]
        assert employees.intent[0].attribute == "Age"
