"""Unit tests for the execution engines (Table 2) and df/SQL parity."""

from __future__ import annotations

import pytest

from repro import Clause, Vis, config
from repro.core.compiler import compile_intent
from repro.core.executor.base import get_executor
from repro.core.executor.df_exec import DataFrameExecutor
from repro.core.executor.sql_exec import SQLExecutor, translate_vis_to_sql
from repro.core.intent import parse_intent
from repro.core.metadata import compute_metadata


def _spec(intent, frame):
    out = compile_intent(parse_intent(intent), compute_metadata(frame))
    assert len(out) == 1
    return out[0].spec


class TestDataFrameExecutor:
    def test_histogram_bins_and_counts(self, employees):
        spec = _spec(["Age"], employees)
        records = DataFrameExecutor().execute(spec, employees)
        assert len(records) == config.default_bin_size
        assert sum(r["count"] for r in records) == len(employees)

    def test_bar_groupby_mean(self, employees):
        spec = _spec(["Age", "Education"], employees)
        records = DataFrameExecutor().execute(spec, employees)
        got = {r["Education"]: r["Age"] for r in records}
        for level in got:
            sub = employees[employees["Education"] == level]
            assert got[level] == pytest.approx(sub["Age"].mean())

    def test_count_bar(self, employees):
        spec = _spec(["Department"], employees)
        records = DataFrameExecutor().execute(spec, employees)
        assert sum(r["count"] for r in records) == len(employees)

    def test_scatter_selection(self, employees):
        spec = _spec(["Age", "MonthlyIncome"], employees)
        records = DataFrameExecutor().execute(spec, employees)
        assert len(records) == len(employees)
        assert set(records[0].keys()) == {"Age", "MonthlyIncome"}

    def test_scatter_sampled_beyond_cap(self, employees):
        config.max_scatter_points = 50
        spec = _spec(["Age", "MonthlyIncome"], employees)
        records = DataFrameExecutor().execute(spec, employees)
        assert len(records) == 50

    def test_colored_bar_2d_groupby(self, employees):
        spec = _spec(["Education", "Age", "Attrition"], employees)
        records = DataFrameExecutor().execute(spec, employees)
        keys = {(r["Education"], r["Attrition"]) for r in records}
        assert len(keys) == len(records)  # one row per group pair

    def test_heatmap_nominal(self, employees):
        spec = _spec(["Education", "Department"], employees)
        records = DataFrameExecutor().execute(spec, employees)
        assert sum(r["count"] for r in records) == len(employees)

    def test_geo_choropleth_mean(self, employees):
        spec = _spec(["Country", "Age"], employees)
        records = DataFrameExecutor().execute(spec, employees)
        got = {r["Country"]: r["Age"] for r in records}
        sub = employees[employees["Country"] == "Japan"]
        assert got["Japan"] == pytest.approx(sub["Age"].mean())

    def test_filters_applied(self, employees):
        spec = _spec(["Age", "Department=Sales"], employees)
        records = DataFrameExecutor().execute(spec, employees)
        n_sales = len(employees[employees["Department"] == "Sales"])
        assert sum(r["count"] for r in records) == n_sales

    @pytest.mark.parametrize("op,expected", [
        (">", lambda s, v: s > v),
        ("<", lambda s, v: s < v),
        (">=", lambda s, v: s >= v),
        ("<=", lambda s, v: s <= v),
        ("!=", lambda s, v: s != v),
    ])
    def test_filter_operators(self, employees, op, expected):
        ex = DataFrameExecutor()
        out = ex.apply_filters(employees, [("Age", op, 40)])
        assert len(out) == len(employees[expected(employees["Age"], 40)])

    def test_numeric_heatmap_2d_bins(self, employees):
        from repro.vis.encoding import Encoding
        from repro.vis.spec import VisSpec

        spec = VisSpec(
            "rect",
            [
                Encoding("x", "Age", "quantitative", bin_size=5),
                Encoding("y", "MonthlyIncome", "quantitative", bin_size=5),
                Encoding("color", "", "quantitative", aggregate="count"),
            ],
        )
        records = DataFrameExecutor().execute(spec, employees)
        assert sum(r["count"] for r in records) == len(employees)


class TestSQLExecutorParity:
    @pytest.fixture(autouse=True)
    def _seed(self, employees):
        self.df_exec = DataFrameExecutor()
        self.sql_exec = SQLExecutor()
        self.frame = employees

    def _parity(self, intent, key, value):
        spec_a = _spec(intent, self.frame)
        spec_b = _spec(intent, self.frame)
        a = self.df_exec.execute(spec_a, self.frame)
        b = self.sql_exec.execute(spec_b, self.frame)
        da = {r[key]: r[value] for r in a}
        db = {r[key]: r[value] for r in b}
        assert set(da) == set(db)
        for k in da:
            assert da[k] == pytest.approx(db[k], rel=1e-9)

    def test_bar_mean_parity(self):
        self._parity(["Age", "Education"], "Education", "Age")

    def test_count_bar_parity(self):
        self._parity(["Department"], "Department", "count")

    def test_geo_parity(self):
        self._parity(["Country", "MonthlyIncome"], "Country", "MonthlyIncome")

    def test_filtered_parity(self):
        self._parity(["Age", "Department=Sales"], "Age", "count")

    def test_heatmap_parity(self):
        spec_a = _spec(["Education", "Department"], self.frame)
        spec_b = _spec(["Education", "Department"], self.frame)
        a = self.df_exec.execute(spec_a, self.frame)
        b = self.sql_exec.execute(spec_b, self.frame)
        da = {(r["Education"], r["Department"]): r["count"] for r in a}
        db = {(r["Education"], r["Department"]): r["count"] for r in b}
        assert da == db

    def test_scatter_row_count(self):
        spec = _spec(["Age", "MonthlyIncome"], self.frame)
        records = self.sql_exec.execute(spec, self.frame)
        assert len(records) == len(self.frame)

    def test_variance_aggregate_sql(self):
        spec = _spec(
            [Clause("MonthlyIncome", aggregation="var"), "Attrition"],
            self.frame,
        )
        records = self.sql_exec.execute(spec, self.frame)
        got = {r["Attrition"]: r["MonthlyIncome"] for r in records}
        sub = self.frame[self.frame["Attrition"] == "Yes"]
        assert got["Yes"] == pytest.approx(sub["MonthlyIncome"].var(), rel=1e-9)

    def test_connection_cache_invalidated_on_mutation(self):
        spec = _spec(["Department"], self.frame)
        before = self.sql_exec.execute(spec, self.frame)
        self.frame["Department"] = ["Sales"] * len(self.frame)
        spec2 = _spec(["Department"], self.frame)
        after = self.sql_exec.execute(spec2, self.frame)
        assert len(after) == 1 and len(before) == 3


class TestSQLTranslation:
    def test_bar_sql_shape(self, employees):
        spec = _spec(["Age", "Education"], employees)
        sql = translate_vis_to_sql(spec, employees)
        assert 'GROUP BY "Education"' in sql
        assert 'AVG("Age")' in sql

    def test_filter_where_clause(self, employees):
        spec = _spec(["Age", "Department=Sales"], employees)
        sql = translate_vis_to_sql(spec, employees)
        assert "WHERE" in sql and "'Sales'" in sql

    def test_string_values_escaped(self, employees):
        from repro.core.executor.sql_exec import _sql_literal

        assert _sql_literal("O'Brien") == "'O''Brien'"

    def test_executor_factory(self):
        config.executor = "sql"
        assert isinstance(get_executor(), SQLExecutor)
        config.executor = "dataframe"
        assert isinstance(get_executor(), DataFrameExecutor)
        with pytest.raises(ValueError):
            get_executor("duckdb")
