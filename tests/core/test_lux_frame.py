"""Unit tests for LuxDataFrame display, export, and failproofing (§10.3)."""

from __future__ import annotations

import warnings


from repro import LuxDataFrame, LuxSeries, config
from repro.core.frame import read_csv


class TestAlwaysOnDisplay:
    def test_repr_includes_lux_hint(self, employees):
        text = repr(employees)
        assert "[Lux] actions:" in text
        assert "Correlation" in text

    def test_repr_plain_under_pandas_condition(self, employees):
        config.always_on = False
        assert "[Lux]" not in repr(employees)

    def test_lux_display_mode_shows_charts(self, employees):
        config.default_display = "lux"
        text = repr(employees)
        assert "===" in text and "█" in text

    def test_show_prints_dashboard(self, employees, capsys):
        employees.show(charts_per_action=1)
        out = capsys.readouterr().out
        assert "=== " in out

    def test_derived_frames_are_lux(self, employees):
        assert isinstance(employees.head(), LuxDataFrame)
        assert isinstance(employees[employees["Age"] > 30], LuxDataFrame)
        assert isinstance(employees.groupby("Education").mean(), LuxDataFrame)

    def test_column_access_gives_lux_series(self, employees):
        assert isinstance(employees["Age"], LuxSeries)
        assert isinstance(employees.Age, LuxSeries)

    def test_empty_frame_fallback(self):
        frame = LuxDataFrame({})
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            text = repr(frame)
        assert isinstance(text, str)

    def test_all_missing_column_failproof(self):
        frame = LuxDataFrame({"x": [None, None, None]})
        text = repr(frame)  # must not raise
        assert isinstance(text, str)

    def test_mixed_type_csv_failproof(self, tmp_path):
        path = tmp_path / "dirty.csv"
        path.write_text("a,b\n1,x\ntwo,y\n3.5,\n")
        frame = read_csv(str(path))
        assert isinstance(frame, LuxDataFrame)
        text = repr(frame)
        assert isinstance(text, str)


class TestExport:
    def test_export_records_vis(self, employees):
        vis = employees.export("Distribution", 0)
        assert vis.mark == "histogram"
        assert len(employees.exported) == 1
        assert employees.exported[0] is vis

    def test_exported_accumulates(self, employees):
        employees.export("Distribution", 0)
        employees.export("Occurrence", 0)
        assert len(employees.exported) == 2

    def test_save_as_html(self, employees, tmp_path):
        path = str(tmp_path / "widget.html")
        employees.save_as_html(path)
        html = open(path).read()
        assert "Toggle Pandas/Lux" in html
        assert "Correlation" in html


class TestCurrentVis:
    def test_current_vis_none_without_intent(self, employees):
        assert employees.current_vis is None

    def test_current_vis_matches_intent(self, employees):
        employees.intent = ["Age", "MonthlyIncome"]
        cv = employees.current_vis
        assert cv is not None and cv[0].mark == "point"

    def test_recommendations_include_current_vis(self, employees):
        employees.intent = ["Age", "MonthlyIncome"]
        assert "Current Vis" in employees.recommendations.keys()


class TestLuxSeries:
    def test_series_ops_preserve_luxness(self, employees):
        out = employees["Age"] + 1
        assert isinstance(out, LuxSeries)

    def test_to_lux_frame(self, employees):
        frame = employees["Age"].to_lux_frame()
        assert isinstance(frame, LuxDataFrame)
        assert frame.columns == ["Age"]

    def test_unnamed_series_visualization(self):
        s = LuxSeries([1.0, 2.0, 3.0, 4.0])
        vis = s.visualization
        assert vis is not None

    def test_string_series_bar(self, employees):
        vis = employees["Department"].visualization
        assert vis.mark == "bar"


class TestReadCsv:
    def test_read_csv_returns_lux(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("Age,Dept\n30,Sales\n40,Eng\n")
        frame = read_csv(str(path))
        assert isinstance(frame, LuxDataFrame)
        assert frame.data_types["Age"] == "quantitative"


class TestIntentOnDerived:
    def test_intent_survives_merge(self, employees):
        other = LuxDataFrame({"Country": ["Japan", "Brazil"], "gdp": [5.0, 2.0]})
        employees.intent = ["Age"]
        merged = employees.merge(other, on="Country")
        assert [c.attribute for c in merged.intent] == ["Age"]

    def test_stale_intent_on_derived_is_failproof(self, employees):
        employees.intent = ["Age"]
        dropped = employees.drop("Age")
        text = repr(dropped)  # Age is gone; display must still work
        assert isinstance(text, str)
