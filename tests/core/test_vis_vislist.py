"""Unit tests for Vis and VisList — the paper's Q1-Q7 queries."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Clause, IntentError, Vis, VisList


class TestVis:
    def test_q3_bar_chart(self, employees):
        vis = Vis(["Age", "Education"], employees)
        assert vis.mark == "bar"
        assert vis.data is not None and len(vis.data) == 4

    def test_q4_variance_aggregation(self, employees):
        vis = Vis(
            [Clause("MonthlyIncome", aggregation=np.var), "Attrition"],
            employees,
        )
        assert vis.spec.x.aggregate == "var"
        got = {r["Attrition"]: r["MonthlyIncome"] for r in vis.data}
        sub = employees[employees["Attrition"] == "Yes"]
        assert got["Yes"] == pytest.approx(sub["MonthlyIncome"].var())

    def test_q2_axis_plus_filter(self, employees):
        vis = Vis(["Age", "Department=Sales"], employees)
        assert vis.spec.filters == [("Department", "=", "Sales")]
        total = sum(r["count"] for r in vis.data)
        assert total == len(employees[employees["Department"] == "Sales"])

    def test_unattached_vis(self):
        vis = Vis(["Age"])
        assert vis.spec is None
        assert "unattached" in repr(vis)

    def test_refresh_source(self, employees):
        vis = Vis(["Age"])
        vis.refresh_source(employees)
        assert vis.data is not None

    def test_multi_vis_intent_rejected(self, employees):
        with pytest.raises(IntentError, match="VisList"):
            Vis(["Age", "Country=?"], employees)

    def test_invalid_attribute_rejected(self, employees):
        with pytest.raises(IntentError):
            Vis(["Bogus"], employees)

    def test_score_computed_lazily(self, employees):
        vis = Vis(["Age", "MonthlyIncome"], employees)
        assert vis.score is None
        s = vis.compute_score()
        assert 0.0 <= s <= 1.0
        assert vis.compute_score() == s  # cached

    def test_export_code(self, employees):
        vis = Vis(["Age", "Education"], employees)
        assert "alt.Chart" in vis.to_altair_code()
        assert "plt." in vis.to_matplotlib_code()
        d = vis.to_vegalite()
        assert d["mark"] == "bar"
        assert len(d["data"]["values"]) == 4

    def test_ascii_render(self, employees):
        assert "█" in Vis(["Age", "Education"], employees).to_ascii()

    def test_renderers_require_source(self):
        vis = Vis(["Age"])
        with pytest.raises(IntentError):
            vis.to_vegalite()


class TestVisList:
    def test_q5_union(self, employees):
        rates = ["HourlyRate", "MonthlyIncome"]
        vl = VisList(["Education", rates], employees)
        assert len(vl) == 2
        assert all(v.mark == "bar" for v in vl)

    def test_q6_wildcard_pairs(self, employees):
        any_q = Clause("?", data_type="quantitative")
        vl = VisList([any_q, any_q], employees)
        m = 3  # Age, MonthlyIncome, HourlyRate
        assert len(vl) == m * (m - 1)

    def test_q7_filter_wildcard(self, employees):
        vl = VisList(["Age", "Country=?"], employees)
        countries = employees.metadata["Country"].cardinality
        assert len(vl) == countries
        assert all(v.spec.filters for v in vl)

    def test_all_processed(self, employees):
        vl = VisList(["Age", "Country=?"], employees)
        assert all(v.data is not None for v in vl)

    def test_sort_by_score_descending(self, employees):
        any_q = Clause("?", data_type="quantitative")
        vl = VisList([any_q, any_q], employees).sort()
        scores = [v.score for v in vl]
        assert scores == sorted(scores, reverse=True)

    def test_top_k(self, employees):
        vl = VisList(["Age", "Country=?"], employees)
        top = vl.top_k(2)
        assert len(top) == 2

    def test_empty_intent_raises(self, employees):
        with pytest.raises(IntentError):
            VisList(["Bogus"], employees)

    def test_iteration_and_indexing(self, employees):
        vl = VisList(["Education", ["Age", "HourlyRate"]], employees)
        assert vl[0].mark == "bar"
        assert len(list(vl)) == len(vl)

    def test_repr(self, employees):
        vl = VisList(["Age", "Country=?"], employees)
        assert "visualizations" in repr(vl)
