"""Coverage for remaining public-API corners."""

from __future__ import annotations


from repro import Clause, LuxDataFrame, Vis, VisList, config


class TestVisExtras:
    def test_title_override(self, employees):
        vis = Vis(["Age"], employees, title="My custom title")
        assert vis.title == "My custom title"

    def test_intent_property_returns_copy(self, employees):
        vis = Vis(["Age", "Education"], employees)
        got = vis.intent
        got.append(Clause("HourlyRate"))
        assert len(vis.intent) == 2

    def test_vislist_top_k_beyond_length(self, employees):
        vl = VisList(["Education", ["Age", "HourlyRate"]], employees)
        top = vl.top_k(100)
        assert len(top) == len(vl)

    def test_vislist_append(self, employees):
        vl = VisList(visualizations=[], source=employees)
        vl.append(Vis(["Age"], employees))
        assert len(vl) == 1

    def test_vislist_specs(self, employees):
        vl = VisList(["Age", "Country=?"], employees)
        assert len(vl.specs()) == len(vl)

    def test_from_compiled_without_processing(self, employees):
        from repro.core.compiler import compile_intent
        from repro.core.intent import parse_intent

        compiled = compile_intent(parse_intent(["Age"]), employees.metadata)[0]
        vis = Vis.from_compiled(compiled, source=None, process=False)
        assert vis.data is None


class TestDataFrameExtras:
    def test_iloc_tuple(self, tiny):
        assert tiny.iloc[0:2, ["n"]].columns == ["n"]

    def test_loc_list_of_labels(self, tiny):
        indexed = tiny.dropna().set_index("city")
        out = indexed.loc[["a", "b"]]
        assert len(out) == 2

    def test_rangeindex_slice(self):
        from repro.dataframe import RangeIndex

        idx = RangeIndex(10).slice(slice(2, 5))
        assert len(idx) == 3

    def test_describe_empty_numeric(self):
        frame = LuxDataFrame({"s": ["a", "b"]})
        assert frame.describe().columns == []

    def test_setattr_column_update(self, tiny):
        # ``df.existing = series`` routes to column assignment.
        tiny.n = tiny["n"] * 10
        assert tiny["n"].to_list() == [10, 20, 30, 40, 50]

    def test_setattr_new_attribute_is_plain(self, tiny):
        tiny.some_note = "hello"
        assert tiny.some_note == "hello"
        assert "some_note" not in tiny.columns

    def test_content_hash_ignores_nothing(self, tiny):
        h = tiny.content_hash()
        renamed = tiny.rename(columns={"n": "m"})
        assert renamed.content_hash() != h


class TestConfigExtras:
    def test_max_scatter_cap_changes_payload(self, employees):
        config.max_scatter_points = 10
        vis = Vis(["Age", "MonthlyIncome"], employees)
        assert len(vis.data) == 10

    def test_default_bin_size(self, employees):
        config.default_bin_size = 7
        vis = Vis(["Age"], employees)
        assert len(vis.data) == 7

    def test_executor_switch_is_per_call(self, employees):
        config.executor = "sql"
        v1 = Vis(["Education"], employees)
        config.executor = "dataframe"
        v2 = Vis(["Education"], employees)
        d1 = {r["Education"]: r["count"] for r in v1.data}
        d2 = {r["Education"]: r["count"] for r in v2.data}
        assert d1 == d2


class TestSeriesExtras:
    def test_iloc_scalar(self, tiny):
        assert tiny["n"].iloc_scalar(2) == 3

    def test_rename(self, tiny):
        s = tiny["n"].rename("count")
        assert s.name == "count"
        assert tiny["n"].name == "n"

    def test_to_numpy_copies(self, tiny):
        arr = tiny["n"].to_numpy()
        arr[0] = 99
        assert tiny["n"].to_list()[0] == 1

    def test_notna(self, tiny):
        assert tiny["pop"].notna().to_list() == [True, True, True, False, True]
