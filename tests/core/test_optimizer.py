"""Unit tests for the wflow/prune/async optimizations (§8.2)."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import Clause, LuxDataFrame, config
from repro.core.actions import CorrelationAction, DistributionAction, OccurrenceAction
from repro.core.compiler import compile_intent
from repro.core.intent import parse_intent
from repro.core.metadata import compute_metadata
from repro.core.optimizer.cost_model import (
    estimate_action_cost,
    estimate_vis_cost,
    prune_is_beneficial,
)
from repro.core.optimizer.sampling import get_sample, rank_candidates
from repro.core.optimizer.scheduler import run_actions, schedule_actions


@pytest.fixture
def wide() -> LuxDataFrame:
    rng = np.random.default_rng(0)
    n = 30_000
    data = {f"q{i}": rng.normal(0, 1, n) for i in range(6)}
    data["cat"] = rng.choice(["a", "b", "c"], n).tolist()
    return LuxDataFrame(data)


class TestCostModel:
    def _spec(self, intent, frame):
        meta = compute_metadata(frame)
        return compile_intent(parse_intent(intent), meta)[0].spec, meta

    def test_scatter_scales_with_columns(self, employees):
        s2, meta = self._spec(["Age", "MonthlyIncome"], employees)
        s3, _ = self._spec(["Age", "MonthlyIncome", "Education"], employees)
        assert estimate_vis_cost(s3, meta) > estimate_vis_cost(s2, meta)

    def test_bar_cheaper_than_scatter(self, employees):
        bar, meta = self._spec(["Age", "Education"], employees)
        scatter, _ = self._spec(["Age", "MonthlyIncome"], employees)
        assert estimate_vis_cost(bar, meta) < estimate_vis_cost(scatter, meta)

    def test_colored_bar_adds_cross_cardinality(self, employees):
        bar, meta = self._spec(["Age", "Education"], employees)
        colored, _ = self._spec(["Age", "Education", "Attrition"], employees)
        assert estimate_vis_cost(colored, meta) > estimate_vis_cost(bar, meta)

    def test_filters_add_selection_pass(self, employees):
        plain, meta = self._spec(["Age"], employees)
        filtered, _ = self._spec(["Age", "Department=Sales"], employees)
        assert estimate_vis_cost(filtered, meta) > estimate_vis_cost(plain, meta)

    def test_action_cost_is_sum(self, employees):
        s1, meta = self._spec(["Age"], employees)
        s2, _ = self._spec(["MonthlyIncome"], employees)
        total = estimate_action_cost([s1, s2], meta)
        assert total == pytest.approx(
            estimate_vis_cost(s1, meta) + estimate_vis_cost(s2, meta)
        )

    def test_prune_guard_requires_more_candidates_than_k(self):
        assert not prune_is_beneficial(10, 15, 1_000_000, 30_000)
        assert prune_is_beneficial(100, 15, 1_000_000, 30_000)

    def test_prune_guard_requires_smaller_sample(self):
        assert not prune_is_beneficial(100, 15, 20_000, 30_000)

    def test_prune_guard_inequality(self):
        # N*t_exact must exceed N*t_approx + k*t_exact.
        assert not prune_is_beneficial(16, 15, 100_000, 99_000)


class TestSampling:
    def test_small_frames_returned_whole(self, employees):
        assert get_sample(employees) is employees

    def test_large_frames_capped(self, wide):
        config.sampling_cap = 5_000
        config.sampling_start = 10_000
        sample = get_sample(wide)
        assert len(sample) == 5_000

    def test_sample_cached_until_mutation(self, wide):
        config.sampling_cap = 5_000
        s1 = get_sample(wide)
        s2 = get_sample(wide)
        assert s1 is s2
        wide["new"] = 1
        assert get_sample(wide) is not s1

    def test_sampling_disabled(self, wide):
        config.sampling = False
        assert get_sample(wide) is wide


class TestRankCandidates:
    def _candidates(self, frame):
        meta = frame.metadata
        any_q = Clause("?", data_type="quantitative")
        return compile_intent([any_q, any_q], meta)

    def test_topk_size(self, wide):
        config.top_k = 5
        out = rank_candidates(self._candidates(wide), wide)
        assert len(out) == 5

    def test_all_processed_exactly(self, wide):
        config.top_k = 3
        out = rank_candidates(self._candidates(wide), wide)
        assert all(v.data is not None for v in out)
        assert all(v.score is not None for v in out)

    def test_scores_descending(self, wide):
        out = rank_candidates(self._candidates(wide), wide, k=10)
        scores = [v.score for v in out]
        assert scores == sorted(scores, reverse=True)

    def test_prune_matches_exact_on_full_sample(self, wide):
        # With the sample equal to the frame, pruning cannot change top-k.
        cands = self._candidates(wide)
        config.early_pruning = False
        exact = rank_candidates(cands, wide, k=10)
        config.early_pruning = True
        config.sampling_cap = len(wide)
        pruned = rank_candidates(self._candidates(wide), wide, k=10)
        exact_sigs = [v.spec.signature() for v in exact]
        pruned_sigs = [v.spec.signature() for v in pruned]
        assert set(exact_sigs) == set(pruned_sigs)

    def test_prune_recall_high_on_correlated_data(self):
        rng = np.random.default_rng(1)
        n = 40_000
        base = rng.normal(0, 1, n)
        data = {}
        for i in range(8):
            noise_level = 0.1 + 0.35 * i
            data[f"v{i}"] = base + rng.normal(0, noise_level, n)
        frame = LuxDataFrame(data)
        cands = compile_intent(
            [Clause("?", data_type="quantitative")] * 2, frame.metadata
        )
        config.early_pruning = False
        exact = rank_candidates(cands, frame, k=10)
        config.early_pruning = True
        config.sampling_start = 1_000
        config.sampling_cap = 4_000
        approx = rank_candidates(
            compile_intent([Clause("?", data_type="quantitative")] * 2, frame.metadata),
            frame,
            k=10,
        )
        exact_top = {v.spec.signature() for v in exact}
        approx_top = {v.spec.signature() for v in approx}
        recall = len(exact_top & approx_top) / len(exact_top)
        assert recall >= 0.8


class TestScheduler:
    def test_cost_based_order(self, employees):
        actions = [CorrelationAction(), OccurrenceAction(), DistributionAction()]
        meta = employees.metadata
        config.cost_based_scheduling = True
        ordered = schedule_actions(actions, meta)
        costs = [a.estimated_cost(meta) for a in ordered]
        assert costs == sorted(costs)

    def test_fifo_when_disabled(self, employees):
        actions = [CorrelationAction(), OccurrenceAction()]
        config.cost_based_scheduling = False
        ordered = schedule_actions(actions, employees.metadata)
        assert [a.name for a in ordered] == ["Correlation", "Occurrence"]

    def test_run_actions_synchronous(self, employees):
        config.streaming = False
        result = run_actions(
            [OccurrenceAction(), DistributionAction()],
            employees,
            employees.metadata,
        )
        assert set(result.keys()) == {"Occurrence", "Distribution"}

    def test_streaming_returns_first_immediately(self, wide):
        config.streaming = True
        config.cost_based_scheduling = True
        result = run_actions(
            [CorrelationAction(), OccurrenceAction(), DistributionAction()],
            wide,
            wide.metadata,
        )
        # At least the cheapest action must be ready on return.
        assert len(result.ready) >= 1
        result.wait(timeout=60)
        assert len(result.keys()) == 3

    def test_empty_actions(self, employees):
        result = run_actions([], employees, employees.metadata)
        assert result.keys() == []


class TestWflowSemantics:
    def test_memoized_reprint(self, employees):
        r1 = employees.recommendations
        r2 = employees.recommendations
        assert r1 is r2  # cached while fresh

    def test_noncommittal_ops_keep_cache(self, employees):
        r1 = employees.recommendations
        employees.head()  # derives a new frame; original untouched
        employees["Age"].mean()
        assert employees.recommendations is r1

    def test_mutation_expires_recommendations(self, employees):
        r1 = employees.recommendations
        employees["x2"] = employees["Age"] * 2
        assert employees.recommendations is not r1

    def test_intent_change_expires_recommendations_only(self, employees):
        m1 = employees.metadata
        r1 = employees.recommendations
        employees.intent = ["Age"]
        assert employees.recommendations is not r1
        assert employees.metadata is m1  # metadata survives intent changes

    def test_inplace_ops_expire(self, employees):
        r1 = employees.recommendations
        employees.dropna(inplace=True)
        assert employees.recommendations is not r1

    def test_rename_expires(self, employees):
        employees.recommendations
        employees.rename(columns={"Age": "Years"}, inplace=True)
        assert "Years" in employees.metadata

    def test_no_lazy_maintain_recomputes_every_time(self, employees):
        config.lazy_maintain = False
        r1 = employees.recommendations
        r2 = employees.recommendations
        assert r1 is not r2

    def test_wysiwyg_recommendations_never_mutate(self, employees):
        # §10.3: generating recommendations must not change the dataframe.
        employees.intent = ["Age", "MonthlyIncome"]
        before = employees.content_hash()
        _ = employees.recommendations
        repr(employees)
        assert employees.content_hash() == before


class TestConfig:
    def test_condition_presets(self):
        config.apply_condition("no-opt")
        assert not config.lazy_maintain and config.always_on
        config.apply_condition("wflow")
        assert config.lazy_maintain and not config.early_pruning
        config.apply_condition("wflow+prune")
        assert config.early_pruning and not config.cost_based_scheduling
        config.apply_condition("all-opt")
        assert config.cost_based_scheduling
        config.apply_condition("pandas")
        assert not config.always_on

    def test_unknown_condition(self):
        with pytest.raises(ValueError):
            config.apply_condition("turbo")

    def test_snapshot_restore(self):
        snap = config.snapshot()
        config.top_k = 3
        config.restore(snap)
        assert config.top_k == snap["top_k"]
