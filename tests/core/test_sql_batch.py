"""SQL shared-scan batching: consolidated UNION ALL passes for SQLExecutor.

The contract under test: ``SQLExecutor.execute_many`` compiles each filter
group of a batch into one shared-WHERE CTE + UNION ALL statement (plus a
MIN/MAX stats scan when the group bins histograms) and produces results
*bit-identical* to the serial per-spec path — same keys, same record
order, same values — across every supported spec shape, falling back to
the per-spec path for shapes the batch translator can't express.  Also
covered: single connection resolution per batch, the
``config.sql_batch_execute`` ablation toggle, concurrent batches, version
invalidation, and the recommendation pass routing through the batch entry
point under ``config.executor = "sql"``.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import LuxDataFrame, config
from repro.core.errors import ExecutorError
from repro.core.executor.cache import computation_cache
from repro.core.executor.df_exec import DataFrameExecutor
from repro.core.executor.sql_exec import SQLExecutor
from repro.vis.encoding import Encoding
from repro.vis.spec import VisSpec

Q = "quantitative"


def _bar_spec(dim: str, field: str, agg: str) -> VisSpec:
    return VisSpec("bar", [
        Encoding("y", dim, "nominal"),
        Encoding("x", field, Q, aggregate=agg),
    ])


@pytest.fixture(autouse=True)
def _fresh_cache():
    computation_cache.clear()
    yield
    computation_cache.clear()


def _shape_specs() -> list[VisSpec]:
    """Every supported batch shape, with merged, filtered, and odd variants."""
    specs = [
        # Grouped aggregates sharing one dimension (merge into one branch).
        VisSpec("bar", [
            Encoding("y", "Education", "nominal"),
            Encoding("x", "Age", Q, aggregate="mean"),
        ]),
        VisSpec("bar", [
            Encoding("y", "Education", "nominal"),
            Encoding("x", "MonthlyIncome", Q, aggregate="sum"),
        ]),
        VisSpec("bar", [
            Encoding("y", "Education", "nominal"),
            Encoding("x", "Age", Q, aggregate="min"),
        ]),
        VisSpec("bar", [
            Encoding("y", "Education", "nominal"),
            Encoding("x", "Age", Q, aggregate="max"),
        ]),
        VisSpec("bar", [
            Encoding("y", "Department", "nominal"),
            Encoding("x", "", Q, aggregate="count"),
        ]),
        # Variance and median (the sum-of-squares / AVG translations).
        VisSpec("bar", [
            Encoding("y", "Attrition", "nominal"),
            Encoding("x", "MonthlyIncome", Q, aggregate="var"),
        ]),
        VisSpec("bar", [
            Encoding("y", "Attrition", "nominal"),
            Encoding("x", "Age", Q, aggregate="median"),
        ]),
        # 2-D colored group-by (two-key branch).
        VisSpec("line", [
            Encoding("x", "Education", "nominal"),
            Encoding("y", "Age", Q, aggregate="mean"),
            Encoding("color", "Attrition", "nominal"),
        ]),
        VisSpec("area", [
            Encoding("x", "Department", "nominal"),
            Encoding("y", "MonthlyIncome", Q, aggregate="sum"),
        ]),
        # Choropleth.
        VisSpec("geoshape", [
            Encoding("x", "Country", "geographic"),
            Encoding("color", "Age", Q, aggregate="mean"),
        ]),
        # Heatmaps: count and color-aggregate forms.
        VisSpec("rect", [
            Encoding("x", "Education", "nominal"),
            Encoding("y", "Department", "nominal"),
            Encoding("color", "", Q, aggregate="count"),
        ]),
        VisSpec("rect", [
            Encoding("x", "Education", "nominal"),
            Encoding("y", "Department", "nominal"),
            Encoding("color", "HourlyRate", Q, aggregate="mean"),
        ]),
        # Histograms: default and explicit bin counts (CASE bucket branches).
        VisSpec("histogram", [
            Encoding("x", "Age", Q, bin=True),
            Encoding("y", "", Q, aggregate="count"),
        ]),
        VisSpec("histogram", [
            Encoding("x", "MonthlyIncome", Q, bin=True, bin_size=7),
            Encoding("y", "", Q, aggregate="count"),
        ]),
        # Scatter selections (LIMIT-ed subselect branches).
        VisSpec("point", [
            Encoding("x", "Age", Q),
            Encoding("y", "MonthlyIncome", Q),
        ]),
        VisSpec("tick", [Encoding("x", "HourlyRate", Q)]),
    ]
    filtered = []
    for spec in specs:
        filtered.append(
            VisSpec(spec.mark, spec.encodings, filters=[("Department", "=", "Sales")])
        )
        filtered.append(VisSpec(spec.mark, spec.encodings, filters=[("Age", ">", 40)]))
    # Conjunctive filter and a duplicate spec (shared branch + decoder).
    filtered.append(VisSpec("bar", [
        Encoding("y", "Education", "nominal"),
        Encoding("x", "Age", Q, aggregate="mean"),
    ], filters=[("Department", "=", "Sales"), ("Age", "<=", 50)]))
    filtered.append(VisSpec("histogram", [
        Encoding("x", "Age", Q, bin=True),
        Encoding("y", "", Q, aggregate="count"),
    ]))
    return specs + filtered


class TestBatchBitIdentity:
    def test_batch_identical_to_serial_all_shapes(self, employees):
        serial_specs = _shape_specs()
        batch_specs = _shape_specs()
        ex = SQLExecutor()
        expected = [ex.execute(s, employees) for s in serial_specs]
        got = SQLExecutor().execute_many(batch_specs, employees)
        assert len(got) == len(expected)
        for spec, want, have in zip(batch_specs, expected, got):
            assert want == have, f"batch mismatch for {spec!r}"
            assert spec.data is have

    def test_histogram_matches_dataframe_executor(self, employees):
        """SQL CASE binning is bit-identical to the numpy explicit-edges
        path, filtered or not, on float and near-integer columns."""
        variants = [
            VisSpec("histogram", [
                Encoding("x", "Age", Q, bin=True, bin_size=bins),
                Encoding("y", "", Q, aggregate="count"),
            ], filters=filters)
            for bins in (4, 10)
            for filters in ([], [("Department", "=", "Eng")])
        ]
        for spec in variants:
            df_records = DataFrameExecutor().execute(
                VisSpec(spec.mark, spec.encodings, filters=spec.filters), employees
            )
            [sql_records] = SQLExecutor().execute_many([spec], employees)
            assert sql_records == df_records

    def test_histogram_on_integer_column(self):
        # The row-preserving filter forces the SQL CASE-bucket branch
        # (unfiltered histograms route to the numpy path by cost) while
        # keeping the numpy comparison over the identical row set.
        frame = LuxDataFrame({"n": list(range(100)) * 3, "d": ["a", "b", "c"] * 100})
        keep_all = [("d", "!=", "zzz")]
        spec = VisSpec("histogram", [
            Encoding("x", "n", Q, bin=True, bin_size=10),
            Encoding("y", "", Q, aggregate="count"),
        ], filters=keep_all)
        df_records = DataFrameExecutor().execute(
            VisSpec(spec.mark, spec.encodings, filters=keep_all), frame
        )
        [sql_records] = SQLExecutor().execute_many([spec], frame)
        assert sql_records == df_records

    def test_histogram_with_nulls_and_constant_column(self):
        frame = LuxDataFrame({
            "x": [1.0, None, 2.0, 3.0, None, 2.5],
            "c": [7.0] * 6,
        })
        keep_all = [("c", ">", 0.0)]  # forces the SQL CASE-bucket branch
        for field in ("x", "c"):
            spec = VisSpec("histogram", [
                Encoding("x", field, Q, bin=True, bin_size=4),
                Encoding("y", "", Q, aggregate="count"),
            ], filters=keep_all)
            df_records = DataFrameExecutor().execute(
                VisSpec(spec.mark, spec.encodings, filters=keep_all), frame
            )
            [sql_records] = SQLExecutor().execute_many([spec], frame)
            assert sql_records == df_records

    def test_empty_filter_group_histogram(self, employees):
        """A filter matching zero rows yields [] exactly like the serial
        (dataframe-delegated) path."""
        spec = VisSpec("histogram", [
            Encoding("x", "Age", Q, bin=True),
            Encoding("y", "", Q, aggregate="count"),
        ], filters=[("Department", "=", "NoSuchDept")])
        serial = SQLExecutor().execute(
            VisSpec(spec.mark, spec.encodings, filters=spec.filters), employees
        )
        [batched] = SQLExecutor().execute_many([spec], employees)
        assert batched == serial == []

    def test_one_plan_per_filter_signature(self, employees):
        """Multiple filter signatures in one batch: exactly one
        consolidated plan per signature, results still aligned per spec."""
        import repro.core.executor.sql_exec as sql_exec_module

        specs = _shape_specs()
        signatures = {tuple(sorted(repr(f) for f in s.filters)) for s in specs}
        assert len(signatures) >= 3
        plans = []
        orig = sql_exec_module.GroupPlan

        def counting(items, frame):
            plans.append(items)
            return orig(items, frame)

        sql_exec_module.GroupPlan = counting
        try:
            results = SQLExecutor().execute_many(specs, employees)
        finally:
            sql_exec_module.GroupPlan = orig
        assert len(plans) == len(signatures)
        assert all(r is not None for r in results)


class TestBatchFallback:
    def test_text_histogram_same_outcome_as_serial(self, employees):
        """Non-numeric histogram axes fall back to the per-spec path and
        produce exactly the serial outcome (result or error)."""
        def run(fn):
            try:
                return ("ok", fn())
            except Exception as exc:
                return ("err", type(exc).__name__)

        spec_a = VisSpec("histogram", [Encoding("x", "Education", "nominal", bin=True)])
        spec_b = VisSpec("histogram", [Encoding("x", "Education", "nominal", bin=True)])
        serial = run(lambda: SQLExecutor().execute(spec_a, employees))
        batched = run(lambda: SQLExecutor().execute_many([spec_b], employees)[0])
        assert batched == serial

    def test_missing_column_same_outcome_as_serial(self, employees):
        # sqlite's double-quoted-identifier fallback turns an unknown
        # column into a string literal, so the serial path *succeeds* with
        # a degenerate single group; the batch translator refuses the spec
        # (column not found) and must reproduce that exact serial outcome
        # through its per-spec fallback.
        spec_a = VisSpec("bar", [
            Encoding("y", "NoSuchColumn", "nominal"),
            Encoding("x", "Age", Q, aggregate="mean"),
        ])
        spec_b = VisSpec("bar", list(spec_a.encodings))
        serial = SQLExecutor().execute(spec_a, employees)
        [batched] = SQLExecutor().execute_many([spec_b], employees)
        assert batched == serial

    def test_bar_without_dimension_raises_like_serial(self, employees):
        spec_a = VisSpec("bar", [Encoding("x", "Age", Q, aggregate="mean")])
        spec_b = VisSpec("bar", list(spec_a.encodings))
        with pytest.raises(ExecutorError):
            SQLExecutor().execute(spec_a, employees)
        with pytest.raises(ExecutorError):
            SQLExecutor().execute_many([spec_b], employees)

    def test_bad_filter_column_same_outcome_as_serial(self, employees):
        # Same quoted-identifier fallback as above, in the WHERE clause: a
        # missing filter column compares a literal, matches nothing, and
        # the serial path returns [].  The batch path routes the whole
        # group through the per-spec fallback rather than poisoning a
        # consolidated statement, landing on the identical outcome.
        spec_a = VisSpec("bar", [
            Encoding("y", "Education", "nominal"),
            Encoding("x", "Age", Q, aggregate="mean"),
        ], filters=[("NoSuchColumn", "=", "x")])
        spec_b = VisSpec("bar", list(spec_a.encodings), filters=list(spec_a.filters))
        serial = SQLExecutor().execute(spec_a, employees)
        [batched] = SQLExecutor().execute_many([spec_b], employees)
        assert batched == serial

    def test_fallback_rides_batch_connection(self, employees):
        """A batch mixing translatable and fallback shapes resolves the
        connection exactly once."""
        specs = [
            VisSpec("bar", [
                Encoding("y", "Education", "nominal"),
                Encoding("x", "Age", Q, aggregate="mean"),
            ]),
            VisSpec("histogram", [Encoding("x", "Education", "nominal", bin=True)]),
        ]
        ex = SQLExecutor()
        calls = []
        orig = SQLExecutor._connection

        def counting(self, frame):
            calls.append(frame)
            return orig(self, frame)

        SQLExecutor._connection = counting
        try:
            try:
                ex.execute_many(specs, employees)
            except Exception:
                pass
            assert len(calls) == 1
        finally:
            SQLExecutor._connection = orig


class TestBatchMechanics:
    def test_connection_resolved_once_per_batch(self, employees):
        specs = _shape_specs()
        calls = []
        orig = SQLExecutor._connection

        def counting(self, frame):
            calls.append(frame)
            return orig(self, frame)

        SQLExecutor._connection = counting
        try:
            SQLExecutor().execute_many(specs, employees)
        finally:
            SQLExecutor._connection = orig
        assert len(calls) == 1

    def test_toggle_off_matches_batched_results(self, employees):
        serial_specs = _shape_specs()
        config.sql_batch_execute = False
        off = SQLExecutor().execute_many(serial_specs, employees)
        config.sql_batch_execute = True
        on = SQLExecutor().execute_many(_shape_specs(), employees)
        assert off == on

    def test_concurrent_batches_identical(self, employees):
        expected = SQLExecutor().execute_many(_shape_specs(), employees)
        outputs: list = [None] * 4
        errors: list = []

        def run(slot: int) -> None:
            try:
                outputs[slot] = SQLExecutor().execute_many(
                    _shape_specs(), employees
                )
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
            assert not t.is_alive(), "concurrent SQL execute_many deadlocked"
        assert not errors
        for out in outputs:
            assert out == expected

    def test_mutation_invalidates_between_batches(self, employees):
        spec = VisSpec("bar", [
            Encoding("y", "Department", "nominal"),
            Encoding("x", "", Q, aggregate="count"),
        ])
        [before] = SQLExecutor().execute_many([spec], employees)
        employees["Department"] = ["Sales"] * len(employees)
        spec2 = VisSpec("bar", list(spec.encodings))
        [after] = SQLExecutor().execute_many([spec2], employees)
        assert len(before) == 3 and len(after) == 1

    def test_empty_batch(self, employees):
        assert SQLExecutor().execute_many([], employees) == []

    def test_identical_scatters_share_one_arm(self, employees):
        from repro.core.executor.sql_compile import GroupPlan

        def point():
            return VisSpec("point", [
                Encoding("x", "Age", Q),
                Encoding("y", "MonthlyIncome", Q),
            ])

        plan = GroupPlan([(0, point()), (1, point())], employees)
        assert len(plan._branches) == 1
        [a, b] = SQLExecutor().execute_many([point(), point()], employees)
        assert a == b == SQLExecutor().execute(point(), employees)

    def test_arm_budget_degrades_to_fallback(self, employees, monkeypatch):
        """Past the compound-select arm budget, extra shapes fall back per
        spec instead of rendering a statement sqlite would reject."""
        import repro.core.executor.sql_compile as sql_compile

        monkeypatch.setattr(sql_compile, "_MAX_ARMS", 2)

        def build():
            specs = [
                _bar_spec("Education", "Age", "mean"),
                _bar_spec("Department", "Age", "mean"),
                _bar_spec("Attrition", "Age", "mean"),
                _bar_spec("Country", "MonthlyIncome", "sum"),
                # Merges into the first arm despite the exhausted budget.
                _bar_spec("Education", "MonthlyIncome", "max"),
                # Histogram arms are created after the stats scan and must
                # honor the budget too (filtered => SQL-side routing).
                VisSpec("histogram", [
                    Encoding("x", "Age", Q, bin=True),
                    Encoding("y", "", Q, aggregate="count"),
                ]),
            ]
            return [
                VisSpec(s.mark, s.encodings, filters=[("Department", "!=", "zzz")])
                for s in specs
            ]

        serial = [SQLExecutor().execute(s, employees) for s in build()]
        batched = SQLExecutor().execute_many(build(), employees)
        assert batched == serial


class TestRecommendationRouting:
    def test_sql_pass_routes_through_batch_entry_point(self):
        """Under config.executor='sql', the ranking passes call
        SQLExecutor.execute_many (not one execute per candidate)."""
        rng = np.random.default_rng(7)
        n = 300
        frame = LuxDataFrame({
            "Age": np.round(rng.normal(40, 10, n), 1),
            "Income": np.round(rng.lognormal(8.0, 0.5, n), 2),
            "Education": rng.choice(["HS", "BS", "MS"], n).tolist(),
            "Department": rng.choice(["Sales", "Eng"], n).tolist(),
        })
        config.executor = "sql"
        calls = {"batches": 0, "specs": 0}
        orig = SQLExecutor.execute_many

        def spy(self, specs, frm):
            calls["batches"] += 1
            calls["specs"] += len(specs)
            return orig(self, specs, frm)

        SQLExecutor.execute_many = spy
        try:
            recommendations = frame.recommendations
            names = list(recommendations)
        finally:
            SQLExecutor.execute_many = orig
        assert names
        assert calls["batches"] >= 1
        assert calls["specs"] >= 2
        for name in names:
            for vis in recommendations[name]:
                assert vis.spec.data is not None
