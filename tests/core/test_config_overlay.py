"""config_overlay(): thread-local isolation, rollback, pool propagation."""

from __future__ import annotations

import threading

import pytest

from repro import config, config_overlay
from repro.core import pool
from repro.core.config import current_overlay, thread_overlay


class TestOverlayBasics:
    def test_overlay_shadows_and_restores(self):
        assert config.top_k == 15
        with config_overlay(top_k=3):
            assert config.top_k == 3
        assert config.top_k == 15

    def test_nesting_inner_wins(self):
        with config_overlay(top_k=3, sampling=False):
            with config_overlay(top_k=9):
                assert config.top_k == 9
                assert config.sampling is False
            assert config.top_k == 3

    def test_direct_mutation_rolled_back(self):
        with config_overlay():
            config.streaming = True
            config.top_k = 99
            assert config.streaming is True and config.top_k == 99
        assert config.streaming is False and config.top_k == 15

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown config field"):
            with config_overlay(not_a_knob=1):
                pass  # pragma: no cover

    def test_overlay_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with config_overlay(top_k=2):
                raise RuntimeError("boom")
        assert config.top_k == 15

    def test_effective_merges_layers(self):
        with config_overlay(top_k=4):
            effective = config.effective()
        assert effective["top_k"] == 4
        assert config.effective()["top_k"] == 15

    def test_snapshot_reports_base_not_overlay(self):
        with config_overlay(top_k=4):
            assert config.snapshot()["top_k"] == 15


class TestThreadIsolation:
    def test_other_threads_see_base_values(self):
        seen = {}

        def reader():
            seen["top_k"] = config.top_k

        with config_overlay(top_k=3):
            t = threading.Thread(target=reader)
            t.start()
            t.join()
        assert seen["top_k"] == 15

    def test_two_threads_hold_different_overlays(self):
        barrier = threading.Barrier(2, timeout=10)
        seen = {}

        def session(name: str, k: int) -> None:
            with thread_overlay({"top_k": k}):
                barrier.wait()  # both overlays active simultaneously
                seen[name] = config.top_k
                barrier.wait()

        threads = [
            threading.Thread(target=session, args=("a", 3)),
            threading.Thread(target=session, args=("b", 7)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen == {"a": 3, "b": 7}
        assert config.top_k == 15

    def test_current_overlay_merges(self):
        assert current_overlay() == {}
        with config_overlay(top_k=3):
            with config_overlay(sampling=False):
                merged = current_overlay()
        assert merged == {"top_k": 3, "sampling": False}


class TestPoolPropagation:
    def test_submitted_work_inherits_overlay(self):
        with config_overlay(top_k=5):
            future = pool.submit(lambda: config.top_k)
            assert future.result(timeout=10) == 5
        assert pool.submit(lambda: config.top_k).result(timeout=10) == 15

    def test_nested_submission_inherits_too(self):
        def outer():
            return pool.submit(lambda: config.top_k).result(timeout=10)

        # The nested submit happens *on the worker*; it must re-capture
        # the overlay the worker is running under.  A single worker would
        # deadlock on the nested wait, so pin two.
        config.action_pool_workers = 2
        with config_overlay(top_k=6):
            assert pool.submit(outer).result(timeout=10) == 6
