"""Unit tests for the three-stage intent compiler (§7.1.2)."""

from __future__ import annotations

import pytest

from repro import Clause, config
from repro.core.compiler import compile_intent, expand, lookup
from repro.core.intent import parse_intent
from repro.core.metadata import compute_metadata


@pytest.fixture
def metadata(employees):
    return compute_metadata(employees)


class TestExpand:
    def test_single_clause_no_expansion(self, metadata):
        combos = expand(parse_intent(["Age"]), metadata)
        assert len(combos) == 1

    def test_union_cross_product(self, metadata):
        intent = parse_intent([["Age", "HourlyRate"], "Education"])
        combos = expand(intent, metadata)
        assert len(combos) == 2  # 2 x 1

    def test_cross_product_size(self, metadata):
        intent = parse_intent([["Age", "HourlyRate"], ["Education", "Department"]])
        assert len(expand(intent, metadata)) == 4

    def test_wildcard_expands_to_non_id_columns(self, metadata):
        combos = expand(parse_intent(["?"]), metadata)
        assert len(combos) == len(metadata.attributes)

    def test_wildcard_with_type_constraint(self, metadata):
        combos = expand([Clause("?", data_type="quantitative")], metadata)
        assert len(combos) == len(metadata.measures)

    def test_duplicate_axis_attributes_dropped(self, metadata):
        intent = [Clause("?", data_type="quantitative")] * 2
        combos = expand(intent, metadata)
        m = len(metadata.measures)
        assert len(combos) == m * (m - 1)  # no (A, A) pairs

    def test_filter_value_wildcard_enumerates_uniques(self, metadata):
        intent = parse_intent(["Age", "Department=?"])
        combos = expand(intent, metadata)
        assert len(combos) == metadata["Department"].cardinality

    def test_filter_value_union(self, metadata):
        intent = parse_intent(["Age", "Department=Sales|Eng"])
        assert len(expand(intent, metadata)) == 2


class TestLookup:
    def test_fills_data_type(self, metadata):
        combo = parse_intent(["Age"])
        filled = lookup(combo, metadata)
        assert filled[0].data_type == "quantitative"

    def test_unknown_column_invalid(self, metadata):
        assert lookup([Clause("Bogus")], metadata) is None

    def test_id_columns_rejected_as_axis(self, employees):
        employees["employee_id"] = list(range(len(employees)))
        meta = compute_metadata(employees)
        assert meta["employee_id"].data_type == "id"
        assert lookup([Clause("employee_id")], meta) is None

    def test_high_cardinality_nominal_rejected(self, employees):
        employees["code"] = [f"c{i}" for i in range(len(employees))]
        meta = compute_metadata(employees)
        meta.override("code", "nominal")
        config.max_cardinality_for_axis = 50
        assert lookup([Clause("code")], meta) is None

    def test_explicit_data_type_preserved(self, metadata):
        filled = lookup([Clause("Age", data_type="nominal")], metadata)
        assert filled[0].data_type == "nominal"


class TestInfer:
    def _compile_one(self, intent, metadata):
        out = compile_intent(parse_intent(intent), metadata)
        assert len(out) == 1
        return out[0].spec

    def test_quantitative_histogram(self, metadata):
        spec = self._compile_one(["Age"], metadata)
        assert spec.mark == "histogram"
        assert spec.x.bin

    def test_nominal_bar(self, metadata):
        spec = self._compile_one(["Education"], metadata)
        assert spec.mark == "bar"
        assert spec.x.aggregate == "count"

    def test_geographic_map(self, metadata):
        spec = self._compile_one(["Country"], metadata)
        assert spec.mark == "geoshape"

    def test_two_measures_scatter(self, metadata):
        spec = self._compile_one(["Age", "MonthlyIncome"], metadata)
        assert spec.mark == "point"

    def test_measure_dimension_bar_mean_default(self, metadata):
        spec = self._compile_one(["Age", "Education"], metadata)
        assert spec.mark == "bar"
        assert spec.x.aggregate == "mean"
        assert spec.y.field == "Education"

    def test_q4_explicit_variance(self, metadata):
        # Q4: Vis([Clause("MonthlyIncome", aggregation=numpy.var), "Attrition"])
        import numpy

        intent = [
            Clause("MonthlyIncome", aggregation=numpy.var),
            Clause("Attrition"),
        ]
        spec = compile_intent(intent, metadata)[0].spec
        assert spec.x.aggregate == "var"

    def test_two_dimensions_heatmap(self, metadata):
        spec = self._compile_one(["Education", "Department"], metadata)
        assert spec.mark == "rect"

    def test_three_attrs_colored_scatter(self, metadata):
        spec = self._compile_one(["Age", "MonthlyIncome", "Education"], metadata)
        assert spec.mark == "point"
        assert spec.color.field == "Education"

    def test_dimension_measure_dimension_colored_bar(self, metadata):
        spec = self._compile_one(["Education", "Age", "Attrition"], metadata)
        assert spec.mark == "bar"
        assert spec.color is not None

    def test_filters_attached(self, metadata):
        spec = self._compile_one(["Age", "Department=Sales"], metadata)
        assert spec.filters == [("Department", "=", "Sales")]

    def test_temporal_line(self, employees):
        from repro.dataframe import date_range

        employees["hired"] = date_range("2018-01-01", periods=len(employees)).column
        meta = compute_metadata(employees)
        spec = compile_intent(parse_intent(["hired"]), meta)[0].spec
        assert spec.mark == "line"

    def test_color_cardinality_cap(self, employees):
        employees["many"] = [f"g{i % 45}" for i in range(len(employees))]
        meta = compute_metadata(employees)
        config.max_cardinality_for_color = 20
        out = compile_intent(
            parse_intent(["Age", "MonthlyIncome", "many"]), meta
        )
        assert out == []

    def test_four_axes_rejected(self, metadata):
        out = compile_intent(
            parse_intent(["Age", "MonthlyIncome", "HourlyRate", "Education"]),
            metadata,
        )
        assert out == []

    def test_signature_dedup(self, metadata):
        # The same vis reachable through two expansions appears once.
        intent = [Clause(attribute=["Age", "Age"])]
        out = compile_intent(intent, metadata)
        assert len(out) == 1


class TestCompileIntentCounts:
    def test_q5_vislist_count(self, metadata):
        rates = ["HourlyRate", "MonthlyIncome"]
        out = compile_intent(parse_intent(["Education", rates]), metadata)
        assert len(out) == 2

    def test_q7_filter_wildcard_count(self, metadata):
        out = compile_intent(parse_intent(["Age", "Country=?"]), metadata)
        assert len(out) == metadata["Country"].cardinality
