"""Per-column metadata versioning and derived-frame cache links.

The frame-level halves of the incremental floor work: a column-scoped
mutation rescans only the named columns (everything else keeps its
``AttributeMeta`` object *and* its per-column version stamp), intent
changes never touch metadata at all, and a row-subset child keeps
deriving untouched columns from its parent's cache slot across the
parent's column-scoped mutations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import LuxDataFrame, config
from repro.core.executor.cache import computation_cache


@pytest.fixture(autouse=True)
def _fresh_cache():
    computation_cache.clear()
    yield
    computation_cache.clear()


def make_frame(n: int = 300, seed: int = 7) -> LuxDataFrame:
    rng = np.random.default_rng(seed)
    return LuxDataFrame(
        {
            "q0": np.round(rng.normal(0, 1, n), 6),
            "q1": np.round(rng.lognormal(1, 0.4, n), 6),
            "d0": rng.choice(["a", "b", "c"], n).tolist(),
        }
    )


class TestPerColumnVersions:
    def test_cold_compute_stamps_every_column_with_frame_version(self):
        frame = make_frame()
        meta = frame.metadata
        assert meta.column_versions == {"q0": 0, "q1": 0, "d0": 0}

    def test_single_column_mutation_advances_only_that_version(self):
        frame = make_frame()
        before = frame.metadata
        untouched = {n: before.attributes[n] for n in ("q1", "d0")}

        frame["q0"] = [-v for v in frame["q0"].to_list()]
        after = frame.metadata

        assert after.column_versions["q0"] == frame._data_version == 1
        assert after.column_versions["q1"] == 0
        assert after.column_versions["d0"] == 0
        # Untouched columns keep the SAME AttributeMeta objects — proof
        # they were carried, not recomputed to equal values.
        for name, attr in untouched.items():
            assert after.attributes[name] is attr
        # The rescanned column reflects the new data.
        assert after["q0"].min == pytest.approx(-before["q0"].max)
        assert after["q0"].max == pytest.approx(-before["q0"].min)

    def test_unread_mutations_accumulate_into_one_delta(self):
        frame = make_frame()
        before = frame.metadata
        d0_attr = before.attributes["d0"]

        # Two mutations land before anyone reads metadata: the pending
        # delta must be their union, so the eventual refresh rescans both
        # mutated columns and still carries the third.
        frame["q0"] = [v + 1.0 for v in frame["q0"].to_list()]
        frame["q1"] = [v + 1.0 for v in frame["q1"].to_list()]
        after = frame.metadata

        assert after.column_versions["q0"] == frame._data_version == 2
        assert after.column_versions["q1"] == 2
        assert after.column_versions["d0"] == 0
        assert after.attributes["d0"] is d0_attr

    def test_intent_change_leaves_metadata_untouched(self):
        frame = make_frame()
        meta = frame.metadata
        versions = dict(meta.column_versions)

        frame.intent = ["q0"]

        # Intent bumps the recommendation epoch only: same metadata cache
        # object, same stamps, no pending delta, data version unmoved.
        assert frame._metadata_cache is meta
        assert frame._metadata_fresh
        assert frame._metadata_delta is None
        assert meta.column_versions == versions
        assert frame._data_version == 0 and frame._intent_epoch == 1

    def test_schema_change_rescans_everything(self):
        frame = make_frame()
        frame.metadata
        frame["d1"] = (["u", "v"] * 150)[: len(frame)]
        after = frame.metadata
        assert set(after.column_versions) == {"q0", "q1", "d0", "d1"}
        assert all(v == 1 for v in after.column_versions.values())


class TestDerivedLinkMigration:
    def test_filtered_child_derives_from_parent_slot(self):
        parent = make_frame()
        mask = np.asarray(parent["q0"].to_list()) > 0
        child = parent[mask]

        view = computation_cache._parent_view(child, ("q0",))
        assert view is not None
        linked_parent, indices = view
        assert linked_parent is parent
        np.testing.assert_array_equal(indices, np.flatnonzero(mask))
        # Derived floats are bit-identical to a direct scan of the child.
        derived = computation_cache.to_float(child, "q1")
        np.testing.assert_array_equal(derived, child.column("q1").to_float())

    def test_link_migrates_across_parent_column_mutation(self):
        parent = make_frame()
        child = parent[np.asarray(parent["q0"].to_list()) > 0]
        assert computation_cache._parent_view(child, ("q1",)) is not None

        parent["q0"] = [-v for v in parent["q0"].to_list()]

        # The link survives the parent's version bump: untouched columns
        # keep deriving, the mutated column is refused (the child's copy
        # predates the mutation).
        assert computation_cache._parent_view(child, ("q1",)) is not None
        assert computation_cache._parent_view(child, ("d0",)) is not None
        assert computation_cache._parent_view(child, ("q0",)) is None
        derived = computation_cache.to_float(child, "q1")
        np.testing.assert_array_equal(derived, child.column("q1").to_float())

    def test_child_mutation_severs_the_link(self):
        parent = make_frame()
        child = parent[np.asarray(parent["q0"].to_list()) > 0]
        child["q1"] = [0.0] * len(child)
        # The child diverged from parent.iloc[indices] entirely.
        assert computation_cache._parent_view(child, ("d0",)) is None

    def test_knob_disables_linking(self):
        config.derived_cache_links = False
        parent = make_frame()
        child = parent[np.asarray(parent["q0"].to_list()) > 0]
        assert computation_cache._parent_view(child, ("q0",)) is None
        # Unlinked children still compute correctly, just cold.
        out = computation_cache.to_float(child, "q0")
        np.testing.assert_array_equal(out, child.column("q0").to_float())
