"""Shared-scan execution: ComputationCache, execute_many, and the cache fixes.

Covers the cross-visualization computation cache (correct results, version-
keyed invalidation, weakref keying), batch/sequential equivalence across all
eight mark handlers, and the regression fixes that rode along: duplicate-
action-name streaming completion, stale-sample invalidation on plain
frames, and explicit numeric-heatmap bin sizes.
"""

from __future__ import annotations

import gc

import numpy as np
import pytest

from repro import LuxDataFrame, config
from repro.core.compiler import compile_intent
from repro.core.executor.cache import ComputationCache, computation_cache
from repro.core.executor.df_exec import DataFrameExecutor
from repro.core.executor.sql_exec import SQLExecutor
from repro.core.intent import parse_intent
from repro.core.interestingness import _pearson
from repro.core.metadata import compute_metadata
from repro.core.optimizer.sampling import get_sample
from repro.core.optimizer.scheduler import run_actions
from repro.dataframe import DataFrame
from repro.vis.encoding import Encoding
from repro.vis.spec import VisSpec


@pytest.fixture(autouse=True)
def _fresh_cache():
    computation_cache.clear()
    yield
    computation_cache.clear()


def _all_mark_specs() -> list[VisSpec]:
    """One spec per mark handler (the eight rows of Table 2), plus variants."""
    q = "quantitative"
    specs = [
        # histogram: bin + count
        VisSpec("histogram", [
            Encoding("x", "Age", q, bin=True, bin_size=10),
            Encoding("y", "", q, aggregate="count"),
        ]),
        # bar: group-by mean
        VisSpec("bar", [
            Encoding("y", "Education", "nominal"),
            Encoding("x", "Age", q, aggregate="mean"),
        ]),
        # bar: group-by count
        VisSpec("bar", [
            Encoding("y", "Department", "nominal"),
            Encoding("x", "", q, aggregate="count"),
        ]),
        # line: 2-D colored group-by
        VisSpec("line", [
            Encoding("x", "Education", "nominal"),
            Encoding("y", "Age", q, aggregate="mean"),
            Encoding("color", "Attrition", "nominal"),
        ]),
        # area: group-by sum
        VisSpec("area", [
            Encoding("x", "Department", "nominal"),
            Encoding("y", "MonthlyIncome", q, aggregate="sum"),
        ]),
        # geoshape: choropleth mean
        VisSpec("geoshape", [
            Encoding("x", "Country", "geographic"),
            Encoding("color", "Age", q, aggregate="mean"),
        ]),
        # point: scatter selection
        VisSpec("point", [
            Encoding("x", "Age", q),
            Encoding("y", "MonthlyIncome", q),
        ]),
        # tick: 1-D selection
        VisSpec("tick", [Encoding("x", "HourlyRate", q)]),
        # rect: nominal heatmap (2-D group-by count)
        VisSpec("rect", [
            Encoding("x", "Education", "nominal"),
            Encoding("y", "Department", "nominal"),
            Encoding("color", "", q, aggregate="count"),
        ]),
        # rect: numeric heatmap (2-D bin + count + color aggregate)
        VisSpec("rect", [
            Encoding("x", "Age", q, bin_size=6),
            Encoding("y", "MonthlyIncome", q, bin_size=6),
            Encoding("color", "HourlyRate", q, aggregate="mean"),
        ]),
    ]
    filtered = []
    for spec in specs:
        filtered.append(
            VisSpec(spec.mark, spec.encodings, filters=[("Department", "=", "Sales")])
        )
        filtered.append(
            VisSpec(spec.mark, spec.encodings, filters=[("Age", ">", 40)])
        )
    return specs + filtered


class TestExecuteManyEquivalence:
    def test_batch_identical_to_sequential_all_marks(self, employees):
        """execute_many == per-spec execute for every handler, ± filters."""
        sequential = _all_mark_specs()
        batch = _all_mark_specs()

        config.computation_cache = False
        expected = [DataFrameExecutor().execute(s, employees) for s in sequential]

        config.computation_cache = True
        computation_cache.clear()
        got = DataFrameExecutor().execute_many(batch, employees)

        assert len(got) == len(expected)
        for spec, a, b in zip(batch, expected, got):
            assert a == b, f"mismatch for {spec!r}"
            assert spec.data is b

    def test_execute_many_with_cache_disabled(self, employees):
        specs = _all_mark_specs()
        config.computation_cache = False
        got = DataFrameExecutor().execute_many(specs, employees)
        assert all(r is not None for r in got)
        assert all(s.data is r for s, r in zip(specs, got))

    def test_repeated_execute_hits_cache(self, employees):
        spec = _all_mark_specs()[1]
        ex = DataFrameExecutor()
        first = ex.execute(spec, employees)
        spec.data = None
        second = ex.execute(spec, employees)
        assert first == second
        assert computation_cache.stats()["groupings"] >= 1

    def test_sql_executor_default_batch_path(self, employees):
        spec = VisSpec("bar", [
            Encoding("y", "Education", "nominal"),
            Encoding("x", "Age", "quantitative", aggregate="mean"),
        ])
        spec2 = VisSpec("bar", list(spec.encodings))
        a = SQLExecutor().execute(spec, employees)
        [b] = SQLExecutor().execute_many([spec2], employees)
        assert a == b


class TestComputationCache:
    def test_mutation_invalidates(self, employees):
        ex = DataFrameExecutor()
        spec = VisSpec("bar", [
            Encoding("y", "Education", "nominal"),
            Encoding("x", "Age", "quantitative", aggregate="mean"),
        ])
        before = ex.execute(spec, employees)
        employees["Age"] = np.asarray(employees["Age"].to_list()) + 100.0
        spec.data = None
        after = ex.execute(spec, employees)
        mean_before = np.mean([r["Age"] for r in before])
        mean_after = np.mean([r["Age"] for r in after])
        assert mean_after == pytest.approx(mean_before + 100.0, rel=1e-6)

    def test_filter_mask_cached_but_subframe_not_pinned(self, employees):
        ex = DataFrameExecutor()
        filters = [("Department", "=", "Sales")]
        a = ex.apply_filters(employees, filters)
        b = ex.apply_filters(employees, filters)
        # The mask is cached (one entry), the subframe deliberately is not:
        # pinning row copies process-wide would retain GBs on large frames.
        assert a is not b
        assert a.equals(b)
        assert computation_cache.stats()["masks"] == 1
        employees["new"] = 1
        c = ex.apply_filters(employees, filters)
        assert len(c) == len(a)

    def test_masks_byte_budget_bounded(self):
        """Distinct filter signatures accumulate masks only up to the budget."""
        config.computation_cache_budget_mb = 1
        rows = 100_000  # each boolean mask costs 100 kB
        frame = DataFrame({"v": np.arange(rows, dtype=float)})
        ex = DataFrameExecutor()
        for i in range(30):
            ex.apply_filters(frame, [("v", ">", float(i))])
        stats = computation_cache.stats()
        assert stats["bytes"] <= 1 << 20
        assert stats["masks"] <= 10  # 1 MB budget / 100 kB per mask

    def test_budget_evicts_cheapest_sections_first(self):
        """Under pressure masks go before groupings (recompute cost order)."""
        config.computation_cache_budget_mb = 1
        rows = 60_000
        frame = DataFrame({
            "v": np.arange(rows, dtype=float),
            "k": (["a", "b", "c", "d"] * (rows // 4)),
        })
        ex = DataFrameExecutor()
        computation_cache.grouping(frame, ("k",))
        for i in range(20):
            ex.apply_filters(frame, [("v", ">", float(i))])
        stats = computation_cache.stats()
        assert stats["bytes"] <= 1 << 20
        # The grouping (9 bytes/row, expensive to recompute) outlives the
        # flood of 60 kB masks (one comparison each to rebuild).
        assert stats["groupings"] == 1

    def test_oversize_entry_bypasses_cache(self):
        """An entry bigger than the whole budget must not wipe the others."""
        config.computation_cache_budget_mb = 1
        rows = 300_000  # float view = 2.4 MB > budget; masks = 300 kB
        frame = DataFrame({"v": np.arange(rows, dtype=float)})
        ex = DataFrameExecutor()
        ex.apply_filters(frame, [("v", ">", 1.0)])
        out = computation_cache.to_float(frame, "v")
        assert len(out) == rows
        stats = computation_cache.stats()
        assert stats["floats"] == 0  # handed back uncached
        assert stats["masks"] == 1  # small entries survive

    def test_zero_budget_disables_bound(self):
        config.computation_cache_budget_mb = 0
        rows = 50_000
        frame = DataFrame({"v": np.arange(rows, dtype=float)})
        ex = DataFrameExecutor()
        for i in range(40):
            ex.apply_filters(frame, [("v", ">", float(i))])
        assert computation_cache.stats()["masks"] == 40

    def test_hit_miss_accounting(self, employees):
        ex = DataFrameExecutor()
        spec = _all_mark_specs()[1]
        ex.execute(spec, employees)
        first = computation_cache.stats()
        spec.data = None
        ex.execute(spec, employees)
        second = computation_cache.stats()
        assert second["hits"] > first["hits"]
        assert second["misses"] == first["misses"]

    def test_plain_frame_mutation_bumps_version(self):
        frame = DataFrame({"a": [1, 2, 3]})
        v0 = frame._data_version
        frame["a"] = [4, 5, 6]
        assert frame._data_version == v0 + 1

    def test_slot_evicted_when_frame_collected(self):
        cache = ComputationCache()
        frame = DataFrame({"a": [1.0, 2.0, 3.0]})
        cache.to_float(frame, "a")
        assert cache.stats()["frames"] == 1
        del frame
        gc.collect()
        assert cache.stats()["frames"] == 0

    def test_cached_arrays_are_readonly(self, employees):
        arr = computation_cache.to_float(employees, "Age")
        with pytest.raises(ValueError):
            arr[0] = 0.0

    def test_toggle_bypasses_store(self, employees):
        config.computation_cache = False
        computation_cache.to_float(employees, "Age")
        computation_cache.grouping(employees, ("Education",))
        assert computation_cache.stats()["frames"] == 0

    def test_pearson_stale_after_inplace_mutation_of_plain_frame(self):
        """Regression: plain frames mutated in place must re-standardize."""
        rng = np.random.default_rng(7)
        x = rng.normal(0, 1, 500)
        frame = DataFrame({"x": x, "y": x + rng.normal(0, 0.01, 500)})
        high = _pearson(frame, "x", "y")
        assert high > 0.9
        frame["y"] = rng.normal(0, 1, 500)  # same length, new content
        low = _pearson(frame, "x", "y")
        assert low < 0.5


class TestSampleLinks:
    def _linked_pair(self, rows: int = 5_000):
        config.sampling_start = 100
        config.sampling_cap = 500
        rng = np.random.default_rng(3)
        frame = DataFrame({
            "q": rng.normal(0, 1, rows),
            "d": rng.choice(["a", "b", "c"], rows).tolist(),
        })
        sample = get_sample(frame)
        assert len(sample) == 500
        return frame, sample

    def test_sample_primitives_prewarm_parent(self):
        """Scans requested on the sample land in the parent's slot too."""
        frame, sample = self._linked_pair()
        computation_cache.to_float(sample, "q")
        computation_cache.factorize(sample, "d")
        # Both the sample slot and the parent slot are now warm.
        assert computation_cache.stats()["frames"] == 2
        assert computation_cache.stats()["links"] == 1
        hits_before = computation_cache.stats()["hits"]
        computation_cache.to_float(frame, "q")
        computation_cache.factorize(frame, "d")
        assert computation_cache.stats()["hits"] == hits_before + 2

    def test_derived_float_values_identical(self):
        frame, sample = self._linked_pair()
        derived = computation_cache.to_float(sample, "q")
        direct = sample.column("q").to_float()
        np.testing.assert_array_equal(derived, direct)

    def test_derived_mask_identical_and_prewarms(self):
        frame, sample = self._linked_pair()
        ex = DataFrameExecutor()
        filters = [("q", ">", 0.0)]
        sub = ex.apply_filters(sample, filters)
        config.computation_cache = False
        expected = ex.apply_filters(sample, filters)
        config.computation_cache = True
        assert sub.equals(expected)
        # The parent's mask was computed on the way, so the full-frame
        # pass for the same filter starts from a hit.
        hits_before = computation_cache.stats()["hits"]
        ex.apply_filters(frame, filters)
        assert computation_cache.stats()["hits"] == hits_before + 1

    def test_derived_factorize_consistent(self):
        frame, sample = self._linked_pair()
        codes, labels = computation_cache.factorize(sample, "d")
        raw = [None if c < 0 else labels[c] for c in codes]
        assert raw == sample.column("d").to_list()

    def test_parent_mutation_stops_derivation(self):
        frame, sample = self._linked_pair()
        frame["q"] = np.zeros(len(frame))
        # The link is version-guarded: primitives fall back to direct
        # computation on the (pre-mutation) sample rows.
        derived = computation_cache.to_float(sample, "q")
        np.testing.assert_array_equal(derived, sample.column("q").to_float())

    def test_derived_grouping_identical_and_prewarms(self):
        """Sample groupings are sliced from the parent's, bit-identically."""
        from repro.dataframe.groupby import _Grouping

        config.sampling_start = 100
        config.sampling_cap = 500
        rng = np.random.default_rng(3)
        frame = DataFrame({
            "q": rng.normal(0, 1, 5_000),
            "d": rng.choice(["a", "b", "c"], 5_000).tolist(),
            "e": rng.choice(["x", "y", "z", "w"], 5_000).tolist(),
        })
        sample = get_sample(frame)
        for keys in [("d",), ("e",), ("d", "e")]:
            derived = computation_cache.grouping(sample, keys)
            direct = _Grouping(
                sample,
                keys,
                factorize=lambda name: computation_cache.factorize(sample, name),
            )
            np.testing.assert_array_equal(derived.group_ids, direct.group_ids)
            np.testing.assert_array_equal(derived.valid, direct.valid)
            assert derived.key_values == direct.key_values
            assert derived.n_groups == direct.n_groups
        # Deriving built the parent's grouping on the way: the exact pass
        # (pass 2, on the full frame) starts from a hit.
        hits_before = computation_cache.stats()["hits"]
        computation_cache.grouping(frame, ("d", "e"))
        assert computation_cache.stats()["hits"] == hits_before + 1

    def test_derived_grouping_after_parent_mutation_falls_back(self):
        frame, sample = self._linked_pair()
        frame["q"] = np.zeros(len(frame))
        derived = computation_cache.grouping(sample, ("d",))
        from repro.dataframe.groupby import _Grouping

        direct = _Grouping(sample, ("d",))
        np.testing.assert_array_equal(derived.group_ids, direct.group_ids)
        assert derived.key_values == direct.key_values

    def test_sample_results_match_unlinked_execution(self):
        frame, sample = self._linked_pair()
        spec = VisSpec("histogram", [
            Encoding("x", "q", "quantitative", bin=True, bin_size=10),
            Encoding("y", "", "quantitative", aggregate="count"),
        ])
        got = DataFrameExecutor().execute(spec, sample)
        config.computation_cache = False
        spec2 = VisSpec(spec.mark, spec.encodings)
        expected = DataFrameExecutor().execute(spec2, sample)
        assert got == expected


class TestSQLConnectionCache:
    def test_connection_reused_per_version(self, employees):
        ex = SQLExecutor()
        assert ex._connection(employees) is ex._connection(employees)

    def test_mutation_rebuilds_connection(self, employees):
        ex = SQLExecutor()
        first = ex._connection(employees)
        employees["Age"] = np.asarray(employees["Age"].to_list()) + 1.0
        second = ex._connection(employees)
        assert second is not first

    def test_connection_dropped_when_frame_collected(self):
        from repro.core.executor import sql_exec

        ex = SQLExecutor()
        frame = DataFrame({"a": [1.0, 2.0, 3.0]})
        ex._connection(frame)
        key = id(frame)
        assert key in sql_exec._CONN_CACHE
        del frame
        gc.collect()
        assert key not in sql_exec._CONN_CACHE


class TestGroupByCachedConversion:
    def test_measure_conversion_routed_through_cache(self, employees):
        spec = VisSpec("bar", [
            Encoding("y", "Education", "nominal"),
            Encoding("x", "MonthlyIncome", "quantitative", aggregate="mean"),
        ])
        DataFrameExecutor().execute(spec, employees)
        slot = computation_cache._slot(employees)
        assert "MonthlyIncome" in slot.floats

    def test_cached_conversion_identical_to_direct(self, employees):
        spec = VisSpec("bar", [
            Encoding("y", "Department", "nominal"),
            Encoding("x", "HourlyRate", "quantitative", aggregate="sum"),
        ])
        got = DataFrameExecutor().execute(spec, employees)
        config.computation_cache = False
        spec2 = VisSpec(spec.mark, spec.encodings)
        expected = DataFrameExecutor().execute(spec2, employees)
        assert got == expected


class TestStreamingCompletion:
    def test_duplicate_action_names_complete(self, employees):
        """Regression: two actions sharing a name must not hang wait()."""
        from repro.core.actions.base import Action

        class Named(Action):
            name = "Twin"

            def applies_to(self, ldf):
                return True

            def candidates(self, ldf):
                return []

        config.streaming = True
        result = run_actions([Named(), Named(), Named()], employees, employees.metadata)
        assert result.wait(timeout=10.0), "RecommendationSet never completed"
        assert "Twin" in result.keys()

    def test_duplicate_names_synchronous(self, employees):
        from repro.core.actions.base import Action

        class Named(Action):
            name = "Twin"

            def applies_to(self, ldf):
                return True

            def candidates(self, ldf):
                return []

        config.streaming = False
        result = run_actions([Named(), Named()], employees, employees.metadata)
        assert result.wait(timeout=1.0)
        assert len(result) == 1


class TestSampleInvalidation:
    def test_plain_frame_sample_refreshes_after_inplace_mutation(self):
        """Regression: same-length mutation must not reuse a stale sample."""
        n = 5_000
        config.sampling_start = 100
        config.sampling_cap = 500
        frame = DataFrame({"v": np.zeros(n)})
        first = get_sample(frame)
        assert float(np.asarray(first["v"].to_list()).sum()) == 0.0
        frame["v"] = np.ones(n)  # same length: the old cap check passed
        second = get_sample(frame)
        assert second is not first
        assert float(np.asarray(second["v"].to_list()).sum()) == len(second)

    def test_lux_frame_sample_still_cached_until_mutation(self):
        n = 5_000
        config.sampling_start = 100
        config.sampling_cap = 500
        frame = LuxDataFrame({"v": np.arange(n, dtype=float)})
        assert get_sample(frame) is get_sample(frame)


class TestHeatmapBins:
    def _spec(self, bx: int, by: int) -> VisSpec:
        return VisSpec("rect", [
            Encoding("x", "Age", "quantitative", bin_size=bx),
            Encoding("y", "MonthlyIncome", "quantitative", bin_size=by),
            Encoding("color", "", "quantitative", aggregate="count"),
        ])

    def test_explicit_small_bins_honored(self, employees):
        """Regression: bin_size below the default was silently overridden."""
        records = DataFrameExecutor().execute(self._spec(4, 4), employees)
        assert 0 < len({r["Age"] for r in records}) <= 4
        assert 0 < len({r["MonthlyIncome"] for r in records}) <= 4
        assert sum(r["count"] for r in records) == len(employees)

    def test_per_axis_bin_sizes(self, employees):
        records = DataFrameExecutor().execute(self._spec(3, 12), employees)
        assert len({r["Age"] for r in records}) <= 3
        assert len({r["MonthlyIncome"] for r in records}) > 3

    def test_unset_bin_size_follows_config_default(self, employees):
        """Encodings without an explicit bin_size track the config knob."""
        config.default_bin_size = 5
        records = DataFrameExecutor().execute(self._spec(0, 0), employees)
        assert 0 < len({r["Age"] for r in records}) <= 5
        config.default_bin_size = 15
        spec = self._spec(0, 0)
        records = DataFrameExecutor().execute(spec, employees)
        assert len({r["Age"] for r in records}) > 5


class TestRankingUsesBatch:
    def test_rank_candidates_display_data_exact(self, employees):
        from repro.core.optimizer.sampling import rank_candidates

        meta = compute_metadata(employees)
        cands = compile_intent(
            parse_intent(["?", "Education"]), meta
        ) + compile_intent(parse_intent(["?"]), meta)
        out = rank_candidates(cands, employees, k=5)
        assert len(out) > 0
        assert all(v.data is not None for v in out)


class TestDeltaAwareInvalidation:
    """Column-level deltas migrate a slot instead of wiping it.

    A LuxDataFrame mutation that names its changed columns (and leaves
    the row set intact) must keep cached primitives for untouched
    columns valid across the ``_data_version`` bump; everything reading
    a changed column must go.
    """

    def _frame(self) -> LuxDataFrame:
        n = 200
        return LuxDataFrame({
            "a": np.arange(n, dtype=float),
            "b": np.arange(n, dtype=float) * 2,
            "g": (["x", "y"] * (n // 2)),
            "h": (["p", "q", "r", "s"] * (n // 4)),
        })

    def test_untouched_columns_survive_single_column_mutation(self):
        frame = self._frame()
        fa = computation_cache.to_float(frame, "a")
        fb = computation_cache.to_float(frame, "b")
        codes_g, _ = computation_cache.factorize(frame, "g")
        grouping_g = computation_cache.grouping(frame, ("g",))
        edges_a = computation_cache.bin_edges(frame, "a", 10)
        frame["b"] = frame["b"] * 3  # delta: columns_changed == {"b"}
        assert computation_cache.to_float(frame, "a") is fa
        assert computation_cache.factorize(frame, "g")[0] is codes_g
        assert computation_cache.grouping(frame, ("g",)) is grouping_g
        assert computation_cache.bin_edges(frame, "a", 10) is edges_a
        fresh_b = computation_cache.to_float(frame, "b")
        assert fresh_b is not fb
        assert float(fresh_b[1]) == 6.0  # recomputed from the new values

    def test_grouping_with_changed_key_is_dropped(self):
        frame = self._frame()
        grouping_gh = computation_cache.grouping(frame, ("g", "h"))
        grouping_g = computation_cache.grouping(frame, ("g",))
        frame["h"] = frame["h"].to_list()[::-1]
        assert computation_cache.grouping(frame, ("g",)) is grouping_g
        assert computation_cache.grouping(frame, ("g", "h")) is not grouping_gh

    def test_masks_keyed_on_changed_filter_column_are_dropped(self):
        frame = self._frame()
        ex = DataFrameExecutor()
        ex.apply_filters(frame, [("g", "=", "x")])
        ex.apply_filters(frame, [("h", "=", "p")])
        assert computation_cache.stats()["masks"] == 2
        frame["g"] = frame["g"].to_list()[::-1]
        # Only the g-mask went; the h-mask survived the bump.
        assert computation_cache.stats()["masks"] == 1
        sub = ex.apply_filters(frame, [("h", "=", "p")])
        assert len(sub) == 50

    def test_row_level_mutation_drops_whole_slot(self):
        frame = self._frame()
        computation_cache.to_float(frame, "a")
        computation_cache.grouping(frame, ("g",))
        assert computation_cache.stats()["frames"] == 1
        frame.dropna(inplace=True)  # rows_changed: no migration possible
        assert computation_cache.stats()["bytes"] == 0 or (
            computation_cache.stats()["floats"] == 0
            and computation_cache.stats()["groupings"] == 0
        )

    def test_migration_keeps_byte_accounting_exact(self):
        frame = self._frame()
        computation_cache.to_float(frame, "a")
        computation_cache.to_float(frame, "b")
        before = computation_cache.stats()["bytes"]
        frame["b"] = frame["b"] * 2
        after = computation_cache.stats()["bytes"]
        assert after == before - 200 * 8  # exactly b's float64 view

    def test_plain_frame_still_fully_invalidated_by_version(self):
        """Substrate frames have no expiry hook: version keying rules."""
        frame = DataFrame({"a": np.arange(10.0), "b": np.arange(10.0)})
        fa = computation_cache.to_float(frame, "a")
        frame["b"] = np.arange(10.0) * 3
        assert computation_cache.to_float(frame, "a") is not fa

    def test_delta_correctness_through_executor(self):
        """End to end: a group-by over the unchanged key after a measure
        mutation reuses the grouping yet aggregates the new values."""
        frame = self._frame()
        ex = DataFrameExecutor()
        spec = VisSpec("bar", [
            Encoding("y", "g", "nominal"),
            Encoding("x", "a", "quantitative", aggregate="mean"),
        ])
        before = ex.execute(spec, frame)
        grouping_g = computation_cache.grouping(frame, ("g",))
        frame["a"] = np.asarray(frame["a"].to_list()) + 100.0
        assert computation_cache.grouping(frame, ("g",)) is grouping_g
        spec.data = None
        after = ex.execute(spec, frame)
        for r_before, r_after in zip(before, after):
            assert r_after["a"] == pytest.approx(r_before["a"] + 100.0)
