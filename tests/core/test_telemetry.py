"""Telemetry core: bucket math, label caps, spans, structured logging.

The merge-associativity tests are the load-bearing ones: the supervisor's
``/metrics`` is only correct because histogram merge is exact bucket-wise
addition over identical bounds in every process.
"""

from __future__ import annotations

import json

import pytest

from repro.core import telemetry, usage_log
from repro.core.config import config, config_overlay
from repro.service import metrics as service_metrics


@pytest.fixture(autouse=True)
def fresh_telemetry():
    telemetry.reset()
    yield
    telemetry.reset()


# ----------------------------------------------------------------------
# Bucket math
# ----------------------------------------------------------------------
class TestBuckets:
    def test_bounds_are_deterministic_powers_of_two(self):
        bounds = telemetry.bucket_bounds(20)
        assert len(bounds) == 20
        assert bounds[0] == telemetry.BUCKET_BASE_S
        for lower, upper in zip(bounds, bounds[1:]):
            assert upper == lower * 2.0
        assert telemetry.bucket_bounds(20) == bounds  # pure function

    def test_bounds_follow_config_knob(self):
        with config_overlay(telemetry_histogram_buckets=8):
            assert len(telemetry.bucket_bounds()) == 8

    def test_observations_land_in_the_right_bucket(self):
        hist = telemetry.Histogram("t_hist", bounds=(0.001, 0.002, 0.004))
        hist.observe(0.0005)   # <= 1ms -> bucket 0
        hist.observe(0.001)    # boundary is inclusive (le semantics)
        hist.observe(0.003)    # bucket 2
        hist.observe(9.0)      # above all bounds -> +Inf slot
        row = hist.snapshot()["values"][""]
        assert row["counts"] == [2, 0, 1, 1]
        assert row["count"] == 4
        assert row["sum"] == pytest.approx(0.0005 + 0.001 + 0.003 + 9.0)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_labels_and_values(self):
        c = telemetry.counter("t_total", "help", ("route",))
        c.inc(labels=("a",))
        c.inc(2.0, labels=("a",))
        c.inc(labels=("b",))
        assert c.value(("a",)) == 3.0
        snap = c.snapshot()
        assert snap["type"] == "counter"
        assert snap["values"] == {"a": 3.0, "b": 1.0}

    def test_label_cardinality_is_capped(self):
        c = telemetry.counter("t_capped", "", ("session",))
        for i in range(telemetry.MAX_LABEL_SETS + 40):
            c.inc(labels=(f"session-{i}",))
        snap = c.snapshot()
        assert len(snap["values"]) == telemetry.MAX_LABEL_SETS + 1
        assert snap["values"][telemetry.OVERFLOW_LABEL] == 40.0

    def test_name_reuse_with_wrong_type_raises(self):
        telemetry.counter("t_typed")
        with pytest.raises(TypeError):
            telemetry.histogram("t_typed")

    def test_gauge_callback_errors_skip_the_sample(self):
        g = telemetry.gauge("t_gauge", "", ("kind",))
        g.set_function(lambda: 7.0, ("ok",))
        g.set_function(lambda: 1 / 0, ("broken",))
        assert g.snapshot()["values"] == {"ok": 7.0}


# ----------------------------------------------------------------------
# Cross-process merge
# ----------------------------------------------------------------------
def _hist_snapshot(observations, bounds=(0.001, 0.002)):
    hist = telemetry.Histogram("m_hist", "h", ("route",), bounds=bounds)
    for value, route in observations:
        hist.observe(value, (route,))
    return {"m_hist": hist.snapshot()}


class TestMerge:
    def test_histogram_merge_is_associative(self):
        a = _hist_snapshot([(0.0005, "r"), (0.1, "r")])
        b = _hist_snapshot([(0.0015, "r"), (0.0015, "s")])
        c = _hist_snapshot([(0.5, "r")])
        left = service_metrics.merge_snapshots(
            [service_metrics.merge_snapshots([a, b]), c]
        )
        right = service_metrics.merge_snapshots(
            [a, service_metrics.merge_snapshots([b, c])]
        )
        assert left == right
        row = left["m_hist"]["values"]["r"]
        assert row["count"] == 4
        assert row["counts"] == [1, 1, 2]

    def test_counters_and_gauges_sum(self):
        snap = {
            "t": {"type": "counter", "help": "", "labels": [], "values": {"": 2.0}}
        }
        merged = service_metrics.merge_snapshots([snap, snap, snap])
        assert merged["t"]["values"][""] == 6.0

    def test_bound_mismatch_is_skipped_and_reported(self):
        a = _hist_snapshot([(0.0005, "r")], bounds=(0.001, 0.002))
        b = _hist_snapshot([(0.0005, "r")], bounds=(0.001, 0.004))
        merged = service_metrics.merge_snapshots([a, b])
        assert merged["m_hist"]["values"]["r"]["count"] == 1
        assert merged["lux_metrics_merge_conflicts"]["values"][""] == 1.0


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_nested_spans_share_trace_and_link_parents(self):
        with telemetry.span("outer", session="s1") as outer:
            with telemetry.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        records = telemetry.spans(trace_id=outer.trace_id)
        assert [r["name"] for r in records] == ["inner", "outer"]
        assert records[1]["parent_id"] is None
        assert records[1]["attrs"]["session"] == "s1"
        assert all(r["duration_ms"] >= 0.0 for r in records)

    def test_trace_context_adopts_remote_parent(self):
        ctx = {"id": "aabbccdd00112233", "span": "parent-span", "sampled": True}
        with telemetry.trace_context(ctx):
            assert telemetry.current_trace_id() == "aabbccdd00112233"
            with telemetry.span("adopted") as s:
                assert s.trace_id == "aabbccdd00112233"
                assert s.parent_id == "parent-span"
        assert telemetry.current_trace() is None

    def test_sample_rate_zero_drops_spans(self):
        with config_overlay(telemetry_sample_rate=0.0):
            with telemetry.span("invisible"):
                pass
        assert telemetry.spans() == []

    def test_ring_buffer_is_bounded(self):
        with config_overlay(telemetry_span_buffer=4):
            for i in range(10):
                with telemetry.span(f"s{i}"):
                    pass
            names = [r["name"] for r in telemetry.spans()]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_session_filter_and_limit(self):
        for i in range(3):
            with telemetry.span("read", session="target"):
                pass
            with telemetry.span("read", session="other"):
                pass
        records = telemetry.spans(session_id="target", limit=2)
        assert len(records) == 2
        assert all(r["attrs"]["session"] == "target" for r in records)


# ----------------------------------------------------------------------
# Structured logging + usage_log correlation
# ----------------------------------------------------------------------
class TestLogging:
    def test_records_carry_trace_and_session_from_parent_chain(self):
        with telemetry.span("outer", session="s42"):
            with telemetry.span("inner") as inner:
                record = telemetry.get_logger("t").info("evt", rows=3)
        assert record["trace_id"] == inner.trace_id
        assert record["session_id"] == "s42"
        assert record["rows"] == 3
        assert record["event"] == "evt" and record["logger"] == "t"

    def test_records_are_json_serializable_via_handlers(self):
        seen = []
        telemetry.add_log_handler(seen.append)
        try:
            telemetry.get_logger("t").warning("bad_thing", error="boom")
        finally:
            telemetry.remove_log_handler(seen.append)
        assert len(seen) == 1
        assert json.loads(json.dumps(seen[0]))["level"] == "warning"

    def test_usage_log_attaches_trace_id_inside_spans(self):
        usage_log.enable()
        try:
            usage_log.get_log().clear()
            usage_log.record("print", rows=5)
            with telemetry.span("session.read", session="s1") as s:
                usage_log.record("intent", action="Distribution")
            events = usage_log.get_log().events()
        finally:
            usage_log.disable()
            usage_log.get_log().clear()
        assert "trace_id" not in events[0].detail
        assert events[1].detail["trace_id"] == s.trace_id
        assert events[1].detail["action"] == "Distribution"
