"""Golden cross-backend equivalence: DataFrame vs SQL executors.

A permanent drift detector for the SQL translator: the same
recommendation-pass spec shapes run on ``DataFrameExecutor``, serial
``SQLExecutor``, and batched ``SQLExecutor.execute_many``, and must yield
the same visualization data.

Comparison rules (the physics of crossing engines):

- SQL-vs-SQL (serial vs batched) is asserted **bit-identical, ordered** —
  both are sqlite, so nothing may differ (``test_sql_batch`` holds this
  too; here it anchors the three-way chain).
- DataFrame-vs-SQL compares records as unordered sets with floats at 9
  significant digits: the engines order group keys differently and sum in
  different association orders, which moves the last couple of ULPs.
- Histograms compare bit-identically even across engines: SQL binning is
  compiled against the same numpy edges the dataframe path uses.

Known, pinned divergences (asserted so silent drift is impossible):

- SQL keeps NULL group keys; the dataframe factorization drops NaN keys.
- Numeric (quantitative x quantitative) heatmaps: the dataframe executor
  2-D bins; SQL groups raw values — excluded from the golden shapes.
"""

from __future__ import annotations

from typing import Any

import pytest

from repro import LuxDataFrame, config
from repro.core.executor.cache import computation_cache
from repro.core.executor.df_exec import DataFrameExecutor
from repro.core.executor.sql_exec import SQLExecutor
from repro.vis.encoding import Encoding
from repro.vis.spec import VisSpec

Q = "quantitative"


@pytest.fixture(autouse=True)
def _fresh_cache():
    computation_cache.clear()
    yield
    computation_cache.clear()


def _canon_value(v: Any) -> Any:
    if isinstance(v, float):
        return float(f"{v:.9g}")
    return v


def _canon(records: list[dict[str, Any]]) -> list[tuple]:
    """Order-insensitive, ULP-insensitive record identity."""
    return sorted(
        tuple(sorted((k, _canon_value(v)) for k, v in r.items())) for r in records
    )


def _bar(dim: str, field: str, agg: str, filters=()) -> VisSpec:
    value = Encoding("x", field, Q, aggregate=agg)
    return VisSpec("bar", [Encoding("y", dim, "nominal"), value], filters=filters)


GOLDEN_SHAPES = [
    pytest.param(lambda: _bar("Education", "Age", "mean"), id="bar-mean"),
    pytest.param(lambda: _bar("Education", "MonthlyIncome", "sum"), id="bar-sum"),
    pytest.param(lambda: _bar("Department", "Age", "min"), id="bar-min"),
    pytest.param(lambda: _bar("Department", "Age", "max"), id="bar-max"),
    pytest.param(lambda: _bar("Department", "", "count"), id="bar-count"),
    pytest.param(
        lambda: _bar("Education", "Age", "mean", filters=[("Department", "=", "Sales")]),
        id="bar-mean-filtered-eq",
    ),
    pytest.param(
        lambda: _bar("Education", "Age", "mean", filters=[("Age", ">", 40)]),
        id="bar-mean-filtered-gt",
    ),
    pytest.param(
        lambda: _bar(
            "Education",
            "MonthlyIncome",
            "sum",
            filters=[("Department", "!=", "Ops"), ("Age", "<=", 55)],
        ),
        id="bar-sum-filtered-conj",
    ),
    pytest.param(
        lambda: VisSpec("line", [
            Encoding("x", "Education", "nominal"),
            Encoding("y", "Age", Q, aggregate="mean"),
            Encoding("color", "Attrition", "nominal"),
        ]),
        id="colored-line-2d",
    ),
    pytest.param(
        lambda: VisSpec("area", [
            Encoding("x", "Department", "nominal"),
            Encoding("y", "MonthlyIncome", Q, aggregate="sum"),
        ]),
        id="area-sum",
    ),
    pytest.param(
        lambda: VisSpec("geoshape", [
            Encoding("x", "Country", "geographic"),
            Encoding("color", "Age", Q, aggregate="mean"),
        ]),
        id="geo-mean",
    ),
    pytest.param(
        lambda: VisSpec("rect", [
            Encoding("x", "Education", "nominal"),
            Encoding("y", "Department", "nominal"),
            Encoding("color", "", Q, aggregate="count"),
        ]),
        id="rect-count",
    ),
    pytest.param(
        lambda: VisSpec("rect", [
            Encoding("x", "Education", "nominal"),
            Encoding("y", "Department", "nominal"),
            Encoding("color", "HourlyRate", Q, aggregate="mean"),
        ]),
        id="rect-color-mean",
    ),
    pytest.param(
        lambda: VisSpec("rect", [
            Encoding("x", "Attrition", "nominal"),
            Encoding("y", "Country", "nominal"),
            Encoding("color", "", Q, aggregate="count"),
        ], filters=[("Age", ">=", 35)]),
        id="rect-count-filtered",
    ),
]

HISTOGRAM_SHAPES = [
    pytest.param(lambda: VisSpec("histogram", [
        Encoding("x", "Age", Q, bin=True),
        Encoding("y", "", Q, aggregate="count"),
    ]), id="hist-default-bins"),
    pytest.param(lambda: VisSpec("histogram", [
        Encoding("x", "MonthlyIncome", Q, bin=True, bin_size=6),
        Encoding("y", "", Q, aggregate="count"),
    ]), id="hist-explicit-bins"),
    pytest.param(lambda: VisSpec("histogram", [
        Encoding("x", "HourlyRate", Q, bin=True, bin_size=12),
        Encoding("y", "", Q, aggregate="count"),
    ], filters=[("Department", "=", "Eng")]), id="hist-filtered"),
]


def _three_way(spec_factory, frame):
    """(dataframe, serial SQL, batched SQL) results for one spec shape."""
    df_records = DataFrameExecutor().execute(spec_factory(), frame)
    serial_records = SQLExecutor().execute(spec_factory(), frame)
    [batch_records] = SQLExecutor().execute_many([spec_factory()], frame)
    return df_records, serial_records, batch_records


class TestGoldenEquivalence:
    @pytest.mark.parametrize("spec_factory", GOLDEN_SHAPES)
    def test_backends_agree(self, employees, spec_factory):
        df_records, serial_records, batch_records = _three_way(
            spec_factory, employees
        )
        assert batch_records == serial_records  # bit-identical, ordered
        assert _canon(df_records) == _canon(batch_records)

    @pytest.mark.parametrize("spec_factory", HISTOGRAM_SHAPES)
    def test_histograms_bit_identical_across_engines(self, employees, spec_factory):
        df_records, serial_records, batch_records = _three_way(
            spec_factory, employees
        )
        # The serial SQL path delegates histograms to the dataframe
        # engine, and batched SQL binning compiles the same numpy edges —
        # all three must agree exactly, order included.
        assert serial_records == df_records
        assert batch_records == df_records

    def test_scatter_same_rows(self, employees):
        """Under the display cap both backends return every row; compare
        as unordered sets (SQL emits table order, the dataframe engine
        row order — same rows either way)."""
        assert len(employees) <= config.max_scatter_points

        def factory():
            return VisSpec("point", [
                Encoding("x", "Age", Q),
                Encoding("y", "MonthlyIncome", Q),
            ])

        df_records, serial_records, batch_records = _three_way(factory, employees)
        assert batch_records == serial_records
        assert _canon(df_records) == _canon(batch_records)

    def test_whole_pass_equivalent_on_both_backends(self, employees):
        """The satellite contract: one recommendation-pass-shaped batch,
        executed via each backend's execute_many, yields equivalent data
        for every candidate."""
        def build():
            return [factory.values[0]() for factory in GOLDEN_SHAPES] + [
                factory.values[0]() for factory in HISTOGRAM_SHAPES
            ]

        df_results = DataFrameExecutor().execute_many(build(), employees)
        sql_results = SQLExecutor().execute_many(build(), employees)
        assert len(df_results) == len(sql_results)
        for df_records, sql_records in zip(df_results, sql_results):
            assert _canon(df_records) == _canon(sql_records)


class TestPinnedDivergences:
    def test_null_group_keys_kept_by_sql_dropped_by_dataframe(self):
        frame = LuxDataFrame({
            "city": ["a", "b", "a", "c", None],
            "pop": [1.0, 2.0, 3.0, None, 5.0],
        })
        def factory():
            return _bar("city", "pop", "mean")

        df_records, serial_records, batch_records = _three_way(factory, frame)
        assert batch_records == serial_records
        # SQL has the NULL group; the dataframe factorization drops it.
        assert {r["city"] for r in batch_records} == {None, "a", "b", "c"}
        assert {r["city"] for r in df_records} == {"a", "b", "c"}
        non_null = [r for r in batch_records if r["city"] is not None]
        assert _canon(df_records) == _canon(non_null)
