"""Unit tests for the recommendation actions (Table 1) and the registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro import LuxDataFrame, Vis, VisList, config
from repro.core.actions import (
    CorrelationAction,
    CurrentVisAction,
    DistributionAction,
    EnhanceAction,
    FilterAction,
    GeneralizeAction,
    GeographicAction,
    IndexAction,
    OccurrenceAction,
    PreAggregateAction,
    PreFilterAction,
    TemporalAction,
    default_registry,
    register_action,
    remove_action,
)


class TestMetadataActions:
    def test_distribution_histograms(self, employees):
        action = DistributionAction()
        assert action.applies_to(employees)
        out = action.generate(employees)
        assert len(out) == 3  # Age, MonthlyIncome, HourlyRate
        assert all(v.mark == "histogram" for v in out)

    def test_occurrence_bars(self, employees):
        out = OccurrenceAction().generate(employees)
        assert all(v.mark == "bar" for v in out)
        fields = {v.spec.y.field for v in out}
        assert fields == {"Education", "Department", "Attrition"}

    def test_geographic_maps(self, employees):
        action = GeographicAction()
        assert action.applies_to(employees)
        out = action.generate(employees)
        assert all(v.mark == "geoshape" for v in out)

    def test_temporal_lines(self, employees):
        from repro.dataframe import date_range

        assert not TemporalAction().applies_to(employees)
        employees["hired"] = date_range("2018-01-01", periods=len(employees)).column
        assert TemporalAction().applies_to(employees)
        out = TemporalAction().generate(employees)
        assert out[0].mark == "line"

    def test_correlation_ranked_by_pearson(self, employees):
        employees["Age2"] = employees["Age"] * 2 + 1  # perfectly correlated
        out = CorrelationAction().generate(employees)
        top = out[0]
        assert {top.spec.x.field, top.spec.y.field} == {"Age", "Age2"}
        assert top.score == pytest.approx(1.0, abs=1e-6)

    def test_correlation_needs_two_measures(self, tiny):
        sub = tiny[["city"]]
        assert not CorrelationAction().applies_to(sub)

    def test_correlation_search_space(self, employees):
        meta = employees.metadata
        assert CorrelationAction().search_space_size(meta) == 3


class TestIntentActions:
    def test_current_vis(self, employees):
        employees.intent = ["Age", "MonthlyIncome"]
        out = CurrentVisAction().generate(employees)
        assert len(out) == 1
        assert out[0].mark == "point"

    def test_enhance_adds_attribute(self, employees):
        employees.intent = ["Age", "MonthlyIncome"]
        action = EnhanceAction()
        assert action.applies_to(employees)
        out = action.generate(employees)
        assert len(out) >= 1
        for vis in out:
            assert len([c for c in vis.intent if c.is_axis]) == 3

    def test_enhance_not_applicable_without_intent(self, employees):
        employees.clear_intent()
        assert not EnhanceAction().applies_to(employees)

    def test_filter_adds_filters(self, employees):
        employees.intent = ["Age"]
        out = FilterAction().generate(employees)
        assert len(out) >= 1
        assert all(v.spec.filters for v in out)

    def test_filter_swaps_value(self, employees):
        employees.intent = ["Age", "Department=Sales"]
        out = FilterAction().generate(employees)
        # Candidates with a single Department filter are value swaps.
        swapped = {
            v.spec.filters[0][2]
            for v in out
            if len(v.spec.filters) == 1 and v.spec.filters[0][0] == "Department"
        }
        assert "Sales" not in swapped
        assert {"Eng", "Ops"} <= swapped
        # Candidates with two filters keep the original and add one more.
        added = [v for v in out if len(v.spec.filters) == 2]
        for vis in added:
            assert ("Department", "=", "Sales") in vis.spec.filters

    def test_generalize_removes_clauses(self, employees):
        employees.intent = ["Age", "MonthlyIncome", "Department=Sales"]
        action = GeneralizeAction()
        assert action.applies_to(employees)
        out = action.generate(employees)
        # Removing either axis or the filter -> strictly simpler charts.
        assert 2 <= len(out) <= 3
        for vis in out:
            assert len(vis.intent) == 2

    def test_generalize_not_applicable_single_axis(self, employees):
        employees.intent = ["Age"]
        assert not GeneralizeAction().applies_to(employees)


class TestStructureActions:
    def test_index_action_on_groupby_result(self, employees):
        agg = employees.groupby("Education").mean()
        action = IndexAction()
        assert action.applies_to(agg)
        out = action.generate(agg)
        assert all(v.mark == "bar" for v in out)
        assert all(v.data is not None for v in out)

    def test_index_action_ignores_default_index(self, employees):
        assert not IndexAction().applies_to(employees)

    def test_index_action_pivot_rows_as_lines(self):
        # Fig. 7: pivoted time columns -> one line per row.
        dates = [f"2020-01-{d:02d}" for d in range(1, 11)]
        data = {"state": ["CA", "AL"]}
        for d in dates:
            data[d] = list(np.random.default_rng(0).random(2))
        frame = LuxDataFrame(data).set_index("state")
        out = IndexAction().generate(frame)
        assert all(v.mark == "line" for v in out)
        assert len(out) == 2  # one per row/state

    def test_series_visualization(self, employees):
        vis = employees["Age"].visualization
        assert vis is not None and vis.mark == "histogram"

    def test_series_repr_includes_chart(self, employees):
        text = repr(employees["Education"])
        assert "█" in text

    def test_series_repr_plain_under_pandas_condition(self, employees):
        config.always_on = False
        assert "█" not in repr(employees["Education"])


class TestHistoryActions:
    def test_preaggregate_on_multikey_groupby(self, employees):
        agg = employees.groupby(["Education", "Department"]).mean()
        action = PreAggregateAction()
        assert action.applies_to(agg)
        out = action.generate(agg)
        assert len(out) >= 1

    def test_preaggregate_skips_plain_frames(self, employees):
        assert not PreAggregateAction().applies_to(employees)

    def test_prefilter_on_tiny_filtered_frame(self, employees):
        tiny = employees[employees["Age"] > employees["Age"].max() - 0.5]
        assert len(tiny) <= 5
        action = PreFilterAction()
        assert action.applies_to(tiny)
        out = action.generate(tiny)
        # Recommendations come from the unfiltered parent.
        assert out.source is employees
        assert len(out) >= 1

    def test_prefilter_skips_large_frames(self, employees):
        filtered = employees[employees["Age"] > 0]
        assert not PreFilterAction().applies_to(filtered)


class TestRegistry:
    def test_default_names(self):
        names = default_registry.names()
        for expected in (
            "Current Vis", "Correlation", "Distribution", "Occurrence",
            "Temporal", "Geographic", "Enhance", "Filter", "Generalize",
            "Index", "Pre-aggregate", "Pre-filter",
        ):
            assert expected in names

    def test_applicable_filters_by_trigger(self, employees):
        applicable = {a.name for a in default_registry.applicable(employees)}
        assert "Correlation" in applicable
        assert "Temporal" not in applicable  # no temporal columns
        assert "Enhance" not in applicable  # no intent set

    def test_custom_action_roundtrip(self, employees):
        def my_action(ldf):
            """Top variance measures."""
            return VisList(["Age"], ldf)

        register_action("My Action", my_action)
        try:
            assert "My Action" in default_registry
            recs = employees.recommendations
            assert "My Action" in recs.keys()
            assert len(recs["My Action"]) == 1
        finally:
            remove_action("My Action")
        assert "My Action" not in default_registry

    def test_custom_action_condition(self, employees, tiny):
        register_action(
            "Conditional",
            lambda ldf: VisList(["Age"], ldf),
            condition=lambda ldf: "Age" in ldf.columns,
        )
        try:
            applicable = {a.name for a in default_registry.applicable(employees)}
            assert "Conditional" in applicable
            applicable_tiny = {a.name for a in default_registry.applicable(tiny)}
            assert "Conditional" not in applicable_tiny
        finally:
            remove_action("Conditional")

    def test_custom_action_must_return_vislist(self, employees):
        register_action("Broken", lambda ldf: "nope")
        try:
            from repro.core.actions.registry import default_registry as reg

            action = next(a for a in reg if a.name == "Broken")
            with pytest.raises(TypeError):
                action.generate(employees)
        finally:
            remove_action("Broken")

    def test_paper_influence_example(self, employees):
        # §10.2 P3: "top ten dataframe columns with the most influence over a
        # desired predictive variable" as a custom action.
        def influence(ldf):
            target = "MonthlyIncome"
            visualizations = []
            for other in ldf.metadata.measures:
                if other != target:
                    visualizations.append(Vis([other, target], ldf))
            vl = VisList(visualizations=visualizations, source=ldf)
            return vl.top_k(10)

        register_action("Influence", influence,
                        condition=lambda ldf: "MonthlyIncome" in ldf.columns)
        try:
            recs = employees.recommendations
            assert "Influence" in recs.keys()
            assert 1 <= len(recs["Influence"]) <= 10
        finally:
            remove_action("Influence")
