"""Parallel batch execution: the shared pool and concurrent execute_many.

Covers the tentpole guarantees of the thread-pooled batch path: results
bit-identical to serial execution, safety (and cache-hit accounting) under
overlapping batch passes from many threads, no deadlock when a batch runs
from inside a pool worker (nested fan-out degrades to inline execution),
pool resize hand-off, and byte-budget enforcement under concurrency.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import config
from repro.core import pool
from repro.core.errors import ExecutorError
from repro.core.executor.base import group_indices_by_filter
from repro.core.executor.cache import computation_cache
from repro.core.executor.df_exec import DataFrameExecutor
from repro.dataframe import DataFrame
from repro.vis.encoding import Encoding
from repro.vis.spec import VisSpec

ROWS = 6_000


@pytest.fixture(autouse=True)
def _fresh_cache():
    computation_cache.clear()
    yield
    computation_cache.clear()


@pytest.fixture
def frame() -> DataFrame:
    rng = np.random.default_rng(11)
    return DataFrame({
        "q0": rng.normal(0, 1, ROWS),
        "q1": rng.lognormal(1, 0.4, ROWS),
        "q2": rng.uniform(-5, 5, ROWS),
        "d0": rng.choice(["a", "b", "c", "d"], ROWS).tolist(),
        "d1": rng.choice(["x", "y", "z"], ROWS).tolist(),
    })


def build_specs() -> list[VisSpec]:
    """A mixed batch: several filter groups plus a large unfiltered group."""
    q = "quantitative"
    specs: list[VisSpec] = []
    for d in ("d0", "d1"):
        for m in ("q0", "q1", "q2"):
            specs.append(VisSpec("bar", [
                Encoding("y", d, "nominal"),
                Encoding("x", m, q, aggregate="mean"),
            ]))
    for m in ("q0", "q1", "q2"):
        specs.append(VisSpec("histogram", [
            Encoding("x", m, q, bin=True, bin_size=10),
            Encoding("y", "", q, aggregate="count"),
        ]))
    specs.append(VisSpec("rect", [
        Encoding("x", "d0", "nominal"),
        Encoding("y", "d1", "nominal"),
        Encoding("color", "", q, aggregate="count"),
    ]))
    for value in ("a", "b", "c"):
        for m in ("q0", "q1"):
            specs.append(VisSpec("bar", [
                Encoding("y", "d1", "nominal"),
                Encoding("x", m, q, aggregate="mean"),
            ], filters=[("d0", "=", value)]))
    return specs


def run_serial(frame: DataFrame) -> list[list[dict]]:
    config.parallel_execute = False
    computation_cache.clear()
    return DataFrameExecutor().execute_many(build_specs(), frame)


class TestParallelEquivalence:
    def test_parallel_identical_to_serial(self, frame):
        expected = run_serial(frame)
        config.parallel_execute = True
        config.action_pool_workers = 4
        computation_cache.clear()
        specs = build_specs()
        got = DataFrameExecutor().execute_many(specs, frame)
        assert got == expected
        assert all(s.data is r for s, r in zip(specs, got))

    def test_parallel_single_worker_pool(self, frame):
        """worker_count == 1 falls back to the serial batch path."""
        expected = run_serial(frame)
        config.parallel_execute = True
        config.action_pool_workers = 1
        computation_cache.clear()
        got = DataFrameExecutor().execute_many(build_specs(), frame)
        assert got == expected

    def test_fan_out_gating(self, frame):
        config.parallel_execute = True
        config.action_pool_workers = 4
        groups = group_indices_by_filter(build_specs())
        assert DataFrameExecutor._should_fan_out(groups, frame)
        small = DataFrame({"v": np.arange(10, dtype=float)})
        assert not DataFrameExecutor._should_fan_out(groups, small)
        config.parallel_execute = False
        assert not DataFrameExecutor._should_fan_out(groups, frame)

    def test_parallel_error_propagates(self, frame):
        config.parallel_execute = True
        config.action_pool_workers = 4
        specs = build_specs()
        specs.append(VisSpec("bar", [
            Encoding("y", "d0", "nominal"),
            Encoding("x", "q0", "quantitative", aggregate="mean"),
        ], filters=[("missing_column", "=", 1)]))
        with pytest.raises(ExecutorError):
            DataFrameExecutor().execute_many(specs, frame)


@pytest.mark.slow
class TestConcurrentBatches:
    def test_overlapping_execute_many_threads(self, frame):
        """Stress: concurrent batch passes agree with serial, no deadlock."""
        expected = run_serial(frame)
        config.parallel_execute = True
        config.action_pool_workers = 4
        computation_cache.clear()

        n_threads = 4
        outputs: list = [None] * n_threads
        failures: list[BaseException] = []

        def one_pass(slot: int) -> None:
            try:
                outputs[slot] = DataFrameExecutor().execute_many(
                    build_specs(), frame
                )
            except BaseException as exc:  # pragma: no cover - failure path
                failures.append(exc)

        threads = [
            threading.Thread(target=one_pass, args=(i,), daemon=True)
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
            assert not t.is_alive(), "concurrent execute_many deadlocked"
        assert not failures
        for out in outputs:
            assert out == expected

        stats = computation_cache.stats()
        # 4 passes x ~25 specs over one frame: the shared slot must have
        # served far more lookups from memory than it computed.
        assert stats["frames"] == 1
        assert stats["hits"] > stats["misses"]
        assert stats["hits"] >= 3 * stats["misses"]

    def test_nested_batch_inside_pool_worker_completes(self, frame):
        """A batch issued from a pool thread runs inline (deadlock rule)."""
        expected = run_serial(frame)
        config.parallel_execute = True
        config.action_pool_workers = 2
        computation_cache.clear()

        def nested():
            assert pool.in_worker()
            return DataFrameExecutor().execute_many(build_specs(), frame)

        got = pool.submit(nested).result(timeout=60.0)
        assert got == expected

    def test_budget_respected_under_concurrency(self, frame):
        config.parallel_execute = True
        config.action_pool_workers = 4
        config.computation_cache_budget_mb = 1

        threads = [
            threading.Thread(
                target=lambda: DataFrameExecutor().execute_many(
                    build_specs(), frame
                ),
                daemon=True,
            )
            for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
            assert not t.is_alive()
        assert computation_cache.stats()["bytes"] <= 1 << 20


class TestSharedPool:
    def test_submit_runs_off_thread(self):
        ident = pool.submit(threading.get_ident).result(timeout=10.0)
        assert ident != threading.get_ident()
        assert not pool.in_worker()

    def test_resize_hands_off_queued_tasks(self):
        """Tasks queued behind a resize still complete on the new pool."""
        config.action_pool_workers = 1
        release = threading.Event()
        started = threading.Event()

        def blocker():
            started.set()
            release.wait(30.0)
            return "blocker"

        blocking = pool.submit(blocker)
        assert started.wait(10.0)
        queued = [pool.submit(lambda i=i: i) for i in range(8)]
        # Resize while the single worker is busy and eight tasks are queued:
        # the retired pool's queue is cancelled and re-submitted.
        config.action_pool_workers = 3
        trigger = pool.submit(lambda: "resized")
        release.set()
        assert trigger.result(timeout=30.0) == "resized"
        assert blocking.result(timeout=30.0) == "blocker"
        assert sorted(f.result(timeout=30.0) for f in queued) == list(range(8))

    def test_submit_propagates_exceptions(self):
        future = pool.submit(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            future.result(timeout=10.0)
