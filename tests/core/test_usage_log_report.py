"""Unit tests for usage logging (lux-logger analogue) and HTML reports."""

from __future__ import annotations

import json

import pytest

from repro import usage_log
from repro.core.usage_log import UsageLog
from repro.vis.report import render_report


@pytest.fixture(autouse=True)
def _clean_log():
    log = usage_log.get_log()
    log.clear()
    usage_log.enable()
    yield
    usage_log.disable()
    log.clear()


class TestUsageLog:
    def test_print_events_recorded(self, employees):
        repr(employees)
        events = usage_log.get_log().events("print")
        assert len(events) == 1
        assert events[0].detail["rows"] == len(employees)

    def test_intent_events_recorded(self, employees):
        employees.intent = ["Age"]
        assert len(usage_log.get_log().events("intent")) == 1

    def test_export_events_recorded(self, employees):
        employees.export("Distribution", 0)
        events = usage_log.get_log().events("export")
        assert events[0].detail["action"] == "Distribution"

    def test_disabled_log_is_noop(self, employees):
        usage_log.disable()
        repr(employees)
        assert len(usage_log.get_log()) == 0

    def test_think_times(self):
        log = UsageLog()
        log.enabled = True
        log.record("print")
        log.record("print")
        log.record("print")
        gaps = log.think_times()
        assert len(gaps) == 2
        assert all(g >= 0 for g in gaps)

    def test_summary(self, employees):
        repr(employees)
        repr(employees)
        employees.intent = ["Age"]
        summary = usage_log.get_log().summary()
        assert summary["counts"]["print"] == 2
        assert summary["counts"]["intent"] == 1
        assert summary["n_gaps"] == 1

    def test_jsonl_roundtrip(self, employees, tmp_path):
        repr(employees)
        employees.intent = ["Age"]
        path = str(tmp_path / "log.jsonl")
        usage_log.get_log().to_jsonl(path)
        back = UsageLog.from_jsonl(path)
        assert len(back) == len(usage_log.get_log())
        kinds = [e.kind for e in back.events()]
        assert "print" in kinds and "intent" in kinds

    def test_bounded(self):
        log = UsageLog()
        log.enabled = True
        log.MAX_EVENTS = 10
        for _ in range(50):
            log.record("print")
        assert len(log) == 10


class TestReport:
    def test_render_report_structure(self, employees):
        html = render_report({"Employees": employees}, title="Demo report")
        assert "Demo report" in html
        assert "Employees" in html
        assert "Correlation" in html
        assert "vega-lite" in html
        assert "cardinality" in html  # summary table header

    def test_to_report_writes_file(self, employees, tmp_path):
        path = str(tmp_path / "report.html")
        out = employees.to_report(path, title="HR overview")
        assert out == path
        content = open(path).read()
        assert "HR overview" in content
        assert "report-0-" in content  # chart divs present

    def test_multi_frame_report(self, employees, tiny):
        html = render_report({"A": employees, "B": tiny})
        assert "<h2>A</h2>" in html and "<h2>B</h2>" in html

    def test_report_is_json_safe(self, employees):
        html = render_report({"E": employees})
        # Extract the embedded spec payload and ensure it parses.
        payload = html.split("const SPECS = ")[1].split(";\n")[0]
        specs = json.loads(payload)
        assert len(specs) > 0
