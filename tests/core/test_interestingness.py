"""Unit tests for interestingness scoring."""

from __future__ import annotations

import numpy as np
import pytest

from repro import LuxDataFrame, Vis
from repro.core.executor.df_exec import DataFrameExecutor
from repro.core.interestingness import (
    _dispersion,
    _group_separation,
    _pearson,
    _skewness,
    _unevenness,
    score_vis,
)


@pytest.fixture
def executor():
    return DataFrameExecutor()


class TestPearson:
    def test_perfect_correlation(self):
        frame = LuxDataFrame({"a": [1.0, 2.0, 3.0, 4.0], "b": [2.0, 4.0, 6.0, 8.0]})
        assert _pearson(frame, "a", "b") == pytest.approx(1.0)

    def test_anticorrelation_absolute(self):
        frame = LuxDataFrame({"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]})
        assert _pearson(frame, "a", "b") == pytest.approx(1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        frame = LuxDataFrame({"a": rng.normal(0, 1, 2000), "b": rng.normal(0, 1, 2000)})
        assert _pearson(frame, "a", "b") < 0.1

    def test_constant_column_zero(self):
        frame = LuxDataFrame({"a": [1.0, 1.0, 1.0], "b": [1.0, 2.0, 3.0]})
        assert _pearson(frame, "a", "b") == 0.0

    def test_nan_fallback_matches_corrcoef(self):
        frame = LuxDataFrame({"a": [1.0, 2.0, None, 4.0, 5.0], "b": [2.0, 4.1, 9.9, 8.2, 9.8]})
        x = np.array([1.0, 2.0, 4.0, 5.0])
        y = np.array([2.0, 4.1, 8.2, 9.8])
        expected = abs(np.corrcoef(x, y)[0, 1])
        assert _pearson(frame, "a", "b") == pytest.approx(expected)

    def test_cache_consistency_across_mutation(self):
        frame = LuxDataFrame({"a": [1.0, 2.0, 3.0], "b": [2.0, 4.0, 6.0]})
        assert _pearson(frame, "a", "b") == pytest.approx(1.0)
        frame["b"] = [3.0, 1.0, 2.0]  # bumps _data_version -> cache invalid
        assert _pearson(frame, "a", "b") < 1.0


class TestShapeScores:
    def test_skewness_high_for_lognormal(self):
        rng = np.random.default_rng(0)
        frame = LuxDataFrame({"x": rng.lognormal(0, 1, 3000)})
        assert _skewness(frame, "x") > 0.5

    def test_skewness_low_for_normal(self):
        rng = np.random.default_rng(0)
        frame = LuxDataFrame({"x": rng.normal(0, 1, 3000)})
        assert _skewness(frame, "x") < 0.2

    def test_unevenness_uniform_is_zero(self):
        assert _unevenness(np.array([10.0, 10.0, 10.0])) == pytest.approx(0.0)

    def test_unevenness_concentrated_is_one(self):
        assert _unevenness(np.array([30.0, 0.0, 0.0])) == pytest.approx(1.0)

    def test_unevenness_monotone(self):
        a = _unevenness(np.array([12.0, 10.0, 8.0]))
        b = _unevenness(np.array([25.0, 4.0, 1.0]))
        assert b > a

    def test_dispersion_zero_for_constant(self):
        assert _dispersion(np.array([5.0, 5.0, 5.0])) == pytest.approx(0.0)

    def test_group_separation_strong(self):
        frame = LuxDataFrame(
            {"y": [1.0, 1.1, 0.9, 9.0, 9.1, 8.9], "g": ["a", "a", "a", "b", "b", "b"]}
        )
        assert _group_separation(frame, "y", "g") > 0.95

    def test_group_separation_none(self):
        rng = np.random.default_rng(1)
        frame = LuxDataFrame(
            {"y": rng.normal(0, 1, 600), "g": rng.choice(["a", "b"], 600).tolist()}
        )
        assert _group_separation(frame, "y", "g") < 0.05


class TestScoreVis:
    def test_scores_bounded(self, employees, executor):
        for intent in (["Age"], ["Education"], ["Age", "MonthlyIncome"],
                       ["Age", "Education"], ["Country"]):
            vis = Vis(intent, employees)
            s = score_vis(vis.spec, employees, executor)
            assert 0.0 <= s <= 1.0

    def test_filter_deviation_detects_shifted_subset(self, executor):
        # A filter that changes the Education mix should outscore one that
        # leaves the distribution unchanged.
        education = (["HS"] * 300) + (["BS"] * 300) + (["MS"] * 300)
        group = (["skewed"] * 300) + (["flat"] * 600)
        # In the "skewed" subset all rows are HS; "flat" subsets mirror overall.
        education = (["HS"] * 300) + (["HS"] * 100 + ["BS"] * 250 + ["MS"] * 250)
        frame = LuxDataFrame({"Education": education, "grp": group})
        vis_skew = Vis(["Education", "grp=skewed"], frame)
        vis_flat = Vis(["Education", "grp=flat"], frame)
        s_skew = score_vis(vis_skew.spec, frame, executor)
        s_flat = score_vis(vis_flat.spec, frame, executor)
        assert s_skew > s_flat

    def test_colored_scatter_uses_separation(self, executor):
        frame = LuxDataFrame(
            {
                "x": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
                "y": [1.0, 1.2, 0.8, 9.0, 9.2, 8.8],
                "g": ["a", "a", "a", "b", "b", "b"],
            }
        )
        vis = Vis(["x", "y", "g"], frame)
        assert score_vis(vis.spec, frame, executor) > 0.9

    def test_scoring_never_raises(self, executor):
        # Failproofing: a broken spec scores 0 rather than raising.
        from repro.vis.encoding import Encoding
        from repro.vis.spec import VisSpec

        spec = VisSpec("bar", [Encoding("x", "missing_col", "nominal")])
        frame = LuxDataFrame({"a": [1]})
        assert score_vis(spec, frame, executor) == 0.0
