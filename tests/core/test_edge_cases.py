"""Edge cases and failure injection across the always-on stack."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import LuxDataFrame, Vis, VisList, config, register_action, remove_action
from repro.core.optimizer.scheduler import RecommendationSet


class TestDegenerateFrames:
    def test_empty_frame_recs(self):
        frame = LuxDataFrame({})
        recs = frame.recommendations
        assert recs.keys() == []

    def test_single_row_frame(self):
        frame = LuxDataFrame({"a": [1.0], "b": ["x"]})
        text = repr(frame)
        assert isinstance(text, str)

    def test_single_column_frame(self):
        frame = LuxDataFrame({"value": list(np.arange(50.0))})
        recs = frame.recommendations
        assert "Distribution" in recs.keys()
        assert len(recs["Distribution"]) == 1

    def test_all_null_column(self):
        frame = LuxDataFrame({"x": [None] * 20, "y": list(range(20))})
        text = repr(frame)  # must not raise
        assert isinstance(text, str)

    def test_constant_column_scores_zero(self):
        frame = LuxDataFrame({"c": [5.0] * 30, "d": list(np.arange(30.0))})
        vis = Vis(["c", "d"], frame)
        assert vis.compute_score() == 0.0

    def test_unicode_column_names(self):
        frame = LuxDataFrame({"prix €": [1.0, 2.0, 3.0], "catégorie": ["a", "b", "a"]})
        recs = frame.recommendations
        assert "Occurrence" in recs.keys()
        vis = Vis(["prix €", "catégorie"], frame)
        assert vis.data is not None

    def test_whitespace_in_names(self):
        frame = LuxDataFrame({"my col": [1.0, 2.0], "other col": ["a", "b"]})
        vis = Vis(["my col", "other col"], frame)
        assert vis.mark == "bar"

    def test_duplicate_values_qcut_frame(self):
        # Heavily tied distributions must not break the Distribution action.
        frame = LuxDataFrame({"x": [1.0] * 95 + [2.0] * 5})
        frame.recommendations
        assert isinstance(repr(frame), str)

    def test_boolean_column(self):
        frame = LuxDataFrame({"flag": [True, False, True] * 10, "v": list(range(30))})
        assert frame.data_types["flag"] == "nominal"
        vis = Vis(["flag"], frame)
        assert vis.mark == "bar"

    def test_datetime_metadata_minmax(self):
        from repro.dataframe import date_range

        frame = LuxDataFrame({"t": date_range("2020-01-01", periods=10).column})
        meta = frame.metadata
        assert meta["t"].min is not None
        assert meta["t"].data_type == "temporal"


class TestFailureInjection:
    def test_broken_custom_action_yields_empty_tab(self, employees):
        def broken(ldf):
            raise RuntimeError("boom")

        register_action("Broken", broken)
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                recs = employees.recommendations
                assert "Broken" in recs.keys()
                assert len(recs["Broken"]) == 0
            assert any("Broken" in str(w.message) for w in caught)
            # Other tabs are unaffected.
            assert len(recs["Correlation"]) >= 1
        finally:
            remove_action("Broken")

    def test_broken_trigger_skipped(self, employees):
        register_action(
            "BadTrigger",
            lambda ldf: VisList(["Age"], ldf),
            condition=lambda ldf: 1 / 0,
        )
        try:
            recs = employees.recommendations
            assert "BadTrigger" not in recs.keys()
        finally:
            remove_action("BadTrigger")

    def test_broken_action_in_streaming_mode(self, employees):
        register_action("BrokenStream", lambda ldf: 1 / 0)
        try:
            config.streaming = True
            config.cost_based_scheduling = True
            employees.expire_recommendations()
            recs = employees.recommendations
            recs.wait(timeout=60)
            assert len(recs["BrokenStream"]) == 0
        finally:
            remove_action("BrokenStream")

    def test_vis_with_stale_source_column(self, employees):
        vis = Vis(["Age", "Education"], employees)
        employees.drop("Age", inplace=True)
        # Refreshing against the mutated frame reports the missing column.
        from repro import IntentError

        with pytest.raises(IntentError):
            vis.refresh_source(employees)


class TestRecommendationSetAPI:
    def test_mapping_protocol(self, employees):
        recs = employees.recommendations
        names = recs.keys()
        assert len(recs) == len(names)
        assert names[0] in recs
        assert dict(recs.items()).keys() == set(names)
        assert list(iter(recs)) == names

    def test_repr_states(self):
        rs = RecommendationSet()
        rs._expected = 0
        rs._done.set()
        assert "complete" in repr(rs)

    def test_ready_nonblocking(self, employees):
        recs = employees.recommendations
        assert set(recs.ready) == set(recs.keys())


class TestDisplayModes:
    def test_lux_display_roundtrip(self, employees):
        config.default_display = "lux"
        lux_view = repr(employees)
        config.default_display = "pandas"
        employees.expire_recommendations()
        pandas_view = repr(employees)
        assert "===" in lux_view and "===" not in pandas_view

    def test_streaming_repr_lists_ready_only(self, employees):
        config.streaming = True
        config.cost_based_scheduling = True
        employees.expire_recommendations()
        text = repr(employees)
        assert "[Lux] actions:" in text
        employees.recommendations.wait(timeout=60)

    def test_top_k_respected_across_actions(self, employees):
        config.top_k = 2
        employees.expire_recommendations()
        recs = employees.recommendations
        for name in recs.keys():
            assert len(recs[name]) <= 2
