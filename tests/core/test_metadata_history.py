"""Unit tests for metadata computation, type inference, and history (§6, §8.1)."""

from __future__ import annotations

import pytest

from repro import LuxDataFrame
from repro.core.history import History
from repro.core.metadata import compute_metadata, infer_data_type


class TestTypeInference:
    def test_float_is_quantitative(self):
        assert infer_data_type("x", "float64", 100, 200, []) == "quantitative"

    def test_datetime_is_temporal(self):
        assert infer_data_type("x", "datetime", 10, 20, []) == "temporal"

    def test_string_is_nominal(self):
        assert infer_data_type("x", "string", 3, 20, ["p", "q"]) == "nominal"

    def test_bool_is_nominal(self):
        assert infer_data_type("x", "bool", 2, 20, []) == "nominal"

    def test_low_cardinality_int_is_nominal(self):
        assert infer_data_type("rating", "int64", 5, 1000, []) == "nominal"

    def test_high_cardinality_int_is_quantitative(self):
        assert infer_data_type("count", "int64", 500, 1000, []) == "quantitative"

    def test_geo_by_column_name(self):
        assert infer_data_type("country", "string", 50, 100, ["x"]) == "geographic"
        assert infer_data_type("neighbourhood", "string", 5, 100, ["x"]) == "geographic"

    def test_geo_by_values(self):
        values = ["France", "Germany", "Japan", "Brazil"]
        assert infer_data_type("place", "string", 4, 100, values) == "geographic"

    def test_id_detection(self):
        assert infer_data_type("user_id", "int64", 995, 1000, []) == "id"

    def test_id_requires_near_unique(self):
        assert infer_data_type("user_id", "int64", 5, 1000, []) != "id"

    def test_year_column_is_temporal(self):
        assert infer_data_type("year", "int64", 30, 1000, []) == "temporal"


class TestMetadata:
    def test_stats(self, tiny):
        meta = compute_metadata(tiny)
        assert meta["n"].min == 1 and meta["n"].max == 5
        assert meta["pop"].null_count == 1
        assert meta["city"].cardinality == 3

    def test_unique_values_stored(self, tiny):
        meta = compute_metadata(tiny)
        assert meta["city"].unique_values == ["a", "b", "c"]

    def test_measures_and_dimensions(self, employees):
        meta = compute_metadata(employees)
        assert "Age" in meta.measures
        assert "Education" in meta.dimensions
        assert "Country" in meta.dimensions

    def test_override(self, employees):
        meta = compute_metadata(employees)
        meta.override("Age", "nominal")
        assert meta["Age"].data_type == "nominal"
        with pytest.raises(ValueError):
            meta.override("Age", "bogus")

    def test_unique_cap(self):
        frame = LuxDataFrame({"x": [f"v{i}" for i in range(2000)]})
        meta = compute_metadata(frame)
        assert meta["x"].unique_truncated
        assert len(meta["x"].unique_values) == 1000
        assert meta["x"].cardinality == 2000

    def test_lux_frame_caches_metadata(self, employees):
        m1 = employees.metadata
        m2 = employees.metadata
        assert m1 is m2

    def test_mutation_expires_metadata(self, employees):
        m1 = employees.metadata
        employees["new"] = 1
        assert employees.metadata is not m1
        assert "new" in employees.metadata

    def test_set_data_type_persists_across_refresh(self, employees):
        employees.set_data_type({"Age": "nominal"})
        employees["touch"] = 1  # expires metadata
        assert employees.metadata["Age"].data_type == "nominal"


class TestHistory:
    def test_append_and_flags(self):
        h = History()
        h.append("filter")
        assert h.was_filtered
        assert not h.was_aggregated

    def test_aggregation_flag(self):
        h = History()
        h.append("groupby_agg")
        assert h.was_aggregated

    def test_window(self):
        h = History()
        h.append("filter")
        for _ in range(6):
            h.append("setitem")
        assert not h.was_filtered  # outside the 5-event window

    def test_extend_from_merges_in_order(self):
        parent = History()
        parent.append("setitem")
        child = History()
        child.extend_from(parent)
        child.append("filter")
        assert child.ops() == ["setitem", "filter"]

    def test_bounded(self):
        h = History()
        for _ in range(500):
            h.append("setitem")
        assert len(h) == History.MAX_EVENTS

    def test_frame_records_operations(self, employees):
        filtered = employees[employees["Age"] > 30]
        assert filtered.history.was_filtered

    def test_groupby_marks_aggregated(self, employees):
        agg = employees.groupby("Education").mean()
        assert agg.history.was_aggregated

    def test_head_counts_as_filter(self, employees):
        assert employees.head().history.was_filtered

    def test_history_propagates_through_chains(self, employees):
        out = employees[employees["Age"] > 30].head(3)
        ops = out.history.ops()
        assert "filter" in ops and "head" in ops

    def test_mutation_recorded(self, employees):
        employees["x"] = 1
        assert "setitem" in employees.history.ops()

    def test_parent_reference(self, employees):
        child = employees[employees["Age"] > 30]
        assert child.parent_frame is employees

    def test_intent_propagates_to_derived(self, employees):
        employees.intent = ["Age"]
        child = employees[employees["Age"] > 30]
        assert [c.attribute for c in child.intent] == ["Age"]
