"""Fair-share pool admission: priority bands, round-robin tags, context."""

from __future__ import annotations

import threading
import time

from repro import config
from repro.core import pool


def _block_worker(gate: threading.Event):
    """Occupy the single worker so subsequent submissions queue up."""
    started = threading.Event()

    def blocker():
        started.set()
        gate.wait(10)

    future = pool.submit(blocker)
    assert started.wait(10)
    return future


class TestFairShare:
    def test_interactive_preempts_background(self):
        config.action_pool_workers = 1
        gate = threading.Event()
        order: list[str] = []
        try:
            blocker = _block_worker(gate)
            futures = [
                pool.submit(lambda: order.append("bg"), tag="s1", background=True),
                pool.submit(lambda: order.append("fg"), tag="s2"),
            ]
        finally:
            gate.set()
        for f in futures:
            f.result(timeout=10)
        blocker.result(timeout=10)
        # The background item was queued first but drained second.
        assert order == ["fg", "bg"]

    def test_round_robin_across_tags(self):
        config.action_pool_workers = 1
        gate = threading.Event()
        order: list[str] = []
        try:
            blocker = _block_worker(gate)
            futures = [
                pool.submit(lambda: order.append("a1"), tag="a"),
                pool.submit(lambda: order.append("a2"), tag="a"),
                pool.submit(lambda: order.append("a3"), tag="a"),
                pool.submit(lambda: order.append("b1"), tag="b"),
            ]
        finally:
            gate.set()
        for f in futures:
            f.result(timeout=10)
        blocker.result(timeout=10)
        # Tag b gets its turn after one item of tag a, not after all three.
        assert order.index("b1") == 1, order

    def test_cancel_before_start_prevents_run(self):
        config.action_pool_workers = 1
        gate = threading.Event()
        ran: list[int] = []
        try:
            blocker = _block_worker(gate)
            doomed = pool.submit(lambda: ran.append(1))
            assert doomed.cancel()
        finally:
            gate.set()
        blocker.result(timeout=10)
        # Give the (no-op) dispatcher a moment to drain the queue item.
        deadline = time.monotonic() + 5
        while pool.stats()["queued_interactive"] and time.monotonic() < deadline:
            time.sleep(0.01)
        assert ran == []

    def test_nested_submission_inherits_tag_and_band(self):
        config.action_pool_workers = 2
        seen: dict[str, object] = {}

        def outer():
            seen["tag"] = pool.current_tag()
            inner = pool.submit(lambda: pool.current_tag())
            return inner.result(timeout=10)

        future = pool.submit(outer, tag="sess-9", background=True)
        assert future.result(timeout=10) == "sess-9"
        assert seen["tag"] == "sess-9"

    def test_stats_shape(self):
        stats = pool.stats()
        assert {"workers", "queued_interactive", "queued_background"} <= set(stats)
        assert set(stats["queues"]) == {"interactive", "background"}

    def test_per_tag_queue_depths(self):
        """stats()['queues'] breaks queued work down per band, per tag —
        the /healthz view an operator uses to see who is waiting where."""
        config.action_pool_workers = 1
        gate = threading.Event()
        try:
            blocker = _block_worker(gate)
            futures = [
                pool.submit(lambda: None, tag="s1", background=True),
                pool.submit(lambda: None, tag="s1", background=True),
                pool.submit(lambda: None, tag="s2", background=True),
                pool.submit(lambda: None, tag="s1"),
            ]
            queues = pool.stats()["queues"]
            assert queues["background"] == {"s1": 2, "s2": 1}
            assert queues["interactive"] == {"s1": 1}
        finally:
            gate.set()
        for f in futures:
            f.result(timeout=10)
        blocker.result(timeout=10)
        # Drained queues report empty (zero-count tags are elided).
        deadline = time.monotonic() + 5
        while any(pool.stats()["queues"].values()) and time.monotonic() < deadline:
            time.sleep(0.01)
        assert pool.stats()["queues"] == {"interactive": {}, "background": {}}
